// Counter-plane snapshots through the scheduler: with the snapshot service
// on, a scheduled run carries a timeline with per-job ("job:<id>/<ALG>")
// and dispatcher scopes whose stable series are bit-identical across
// repeated runs and both executor modes; enabling snapshots never changes
// the schedule itself; an injected mid-run counter drift is caught and
// localized by the timeline diff even though the end-of-run states agree;
// and the property holds at fleet scale (HPRS_STRESS_RANKS shrinks the
// 192-rank world for sanitizer runs).
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "obs/report_diff.hpp"
#include "obs/snapshot.hpp"
#include "sched/scheduler.hpp"
#include "test_scenes.hpp"

namespace hprs::sched {
namespace {

simnet::Platform cluster(std::size_t n) {
  std::vector<simnet::ProcessorSpec> procs;
  for (std::size_t i = 0; i < n; ++i) {
    procs.push_back(simnet::ProcessorSpec{
        "p" + std::to_string(i), "t",
        0.001 * static_cast<double>(1 + i % 3), 1024, 512, 0});
  }
  return simnet::Platform("snap-now", std::move(procs), {{10.0}});
}

vmpi::Options snap_options(
    vmpi::ExecMode mode = vmpi::ExecMode::kBoundedExecutor) {
  vmpi::Options o;
  o.per_message_latency_s = 0.0;
  o.deadlock_timeout_s = 120.0;
  o.exec_mode = mode;
  o.snapshot.enabled = true;
  // Small enough that even the first, shortest job crosses a cadence point
  // before its last collective.
  o.snapshot.interval_s = 0.00005;
  return o;
}

std::vector<JobSpec> mixed_stream() {
  std::vector<JobSpec> stream;
  constexpr JobAlgorithm kCycle[] = {JobAlgorithm::kAtdca, JobAlgorithm::kPct,
                                     JobAlgorithm::kPpi, JobAlgorithm::kUfcls,
                                     JobAlgorithm::kMorph};
  for (std::size_t k = 0; k < 5; ++k) {
    JobSpec spec;
    spec.id = k + 1;
    spec.algorithm = kCycle[k];
    spec.arrival_s = 0.002 * static_cast<double>(k);
    spec.ranks = 2 + static_cast<int>(k % 2);
    spec.targets = 4;
    spec.classes = 3;
    spec.iterations = 2;
    spec.kernel_radius = 1;
    spec.skewers = 32;
    stream.push_back(spec);
  }
  return stream;
}

TEST(SchedSnapshotTest, TimelineHasJobAndDispatcherScopes) {
  const simnet::Platform platform = cluster(7);
  const hsi::HsiCube scene = testing::striped_cube(32, 16, 24, 4);
  const auto result = run_schedule(platform, scene, mixed_stream(),
                                   SchedulerConfig{}, snap_options());
  ASSERT_EQ(result.completed(), 5u);
  ASSERT_FALSE(result.report.snapshots.empty());

  bool saw_dispatcher = false;
  bool saw_job = false;
  for (const auto& sample : result.report.snapshots.samples()) {
    if (sample.scope == "dispatcher") saw_dispatcher = true;
    if (sample.scope == "job:1/ATDCA") saw_job = true;
  }
  EXPECT_TRUE(saw_dispatcher);
  EXPECT_TRUE(saw_job);
}

TEST(SchedSnapshotTest, EnablingSnapshotsDoesNotChangeTheSchedule) {
  const simnet::Platform platform = cluster(7);
  const hsi::HsiCube scene = testing::striped_cube(32, 16, 24, 4);
  const std::vector<JobSpec> stream = mixed_stream();

  vmpi::Options plain = snap_options();
  plain.snapshot.enabled = false;
  const auto without = run_schedule(platform, scene, stream,
                                    SchedulerConfig{}, plain);
  const auto with = run_schedule(platform, scene, stream, SchedulerConfig{},
                                 snap_options());

  EXPECT_TRUE(without.report.snapshots.empty());
  ASSERT_EQ(without.records.size(), with.records.size());
  for (std::size_t i = 0; i < without.records.size(); ++i) {
    EXPECT_EQ(without.records[i].dispatch_s, with.records[i].dispatch_s);
    EXPECT_EQ(without.records[i].finish_s, with.records[i].finish_s);
    EXPECT_EQ(without.records[i].members, with.records[i].members);
  }
  EXPECT_EQ(without.makespan_s, with.makespan_s);
}

TEST(SchedSnapshotTest, TimelineBitIdenticalAcrossRunsAndExecutorModes) {
  const simnet::Platform platform = cluster(7);
  const hsi::HsiCube scene = testing::striped_cube(32, 16, 24, 4);
  const std::vector<JobSpec> stream = mixed_stream();

  const auto first = run_schedule(platform, scene, stream, SchedulerConfig{},
                                  snap_options());
  const auto second = run_schedule(platform, scene, stream, SchedulerConfig{},
                                   snap_options());
  const auto threads =
      run_schedule(platform, scene, stream, SchedulerConfig{},
                   snap_options(vmpi::ExecMode::kThreadPerRank));

  ASSERT_FALSE(first.report.snapshots.empty());
  const std::string a = obs::snapshot_timeline_json(first.report.snapshots);
  EXPECT_EQ(a, obs::snapshot_timeline_json(second.report.snapshots));
  EXPECT_EQ(a, obs::snapshot_timeline_json(threads.report.snapshots));
}

TEST(SchedSnapshotTest, MidRunDriftCaughtWhileEndStateMatches) {
  const simnet::Platform platform = cluster(7);
  const hsi::HsiCube scene = testing::striped_cube(32, 16, 24, 4);
  const auto result = run_schedule(platform, scene, mixed_stream(),
                                   SchedulerConfig{}, snap_options());
  const auto golden = obs::snapshot_timeline_flat(result.report.snapshots);

  // Find a dispatcher counter with at least one later sample in the same
  // scope, and bump it by one: a mid-run drift that has "recovered" by the
  // end of the run.
  std::string drift_key;
  auto drifted = golden;
  for (const auto& [key, token] : golden) {
    if (key.rfind("dispatcher|000001|jobs.", 0) == 0 &&
        token.find('.') == std::string::npos) {
      drift_key = key;
      drifted[key] = std::to_string(std::stoull(token) + 1);
      break;
    }
  }
  ASSERT_FALSE(drift_key.empty()) << "no mid-run dispatcher counter sampled";

  // End-state comparison is blind to the drift: the last dispatcher sample
  // (and every other final sample) is untouched.
  const auto& samples = result.report.snapshots.samples();
  const auto* last = &samples.front();
  for (const auto& sample : samples) {
    if (sample.scope == "dispatcher") last = &sample;
  }
  char prefix[32];
  std::snprintf(prefix, sizeof(prefix), "dispatcher|%06d|", last->seq);
  for (const auto& [key, token] : golden) {
    if (key.rfind(prefix, 0) == 0) {
      EXPECT_EQ(token, drifted.at(key));
    }
  }

  const auto diff = obs::diff_timelines(golden, drifted);
  EXPECT_FALSE(diff.ok());
  ASSERT_EQ(diff.diff.mismatches.size(), 1u);
  EXPECT_EQ(diff.diff.mismatches[0].key, drift_key);
  EXPECT_NE(diff.first_divergence.find("\"dispatcher\""), std::string::npos)
      << diff.first_divergence;
  EXPECT_NE(diff.first_divergence.find("sample 1"), std::string::npos);
}

// Fleet-scale stress: wide gangs on a Thunderhead-sized cluster, snapshots
// on.  The stable timeline must stay bit-identical across runs and both
// executor modes even with hundreds of rank threads interleaving.
TEST(SchedSnapshotTest, StressManyRanksTimelineBitIdentical) {
  const int n = env_int_or("HPRS_STRESS_RANKS", 192, 8, 4096);
  const simnet::Platform platform = cluster(static_cast<std::size_t>(n));
  const hsi::HsiCube scene = testing::striped_cube(32, 16, 24, 4);

  std::vector<JobSpec> stream = mixed_stream();
  for (JobSpec& spec : stream) {
    spec.ranks = std::max(2, n / 8);
  }

  const auto first = run_schedule(platform, scene, stream, SchedulerConfig{},
                                  snap_options());
  ASSERT_EQ(first.completed(), stream.size());
  ASSERT_FALSE(first.report.snapshots.empty());
  const auto second = run_schedule(platform, scene, stream, SchedulerConfig{},
                                   snap_options());
  const auto threads =
      run_schedule(platform, scene, stream, SchedulerConfig{},
                   snap_options(vmpi::ExecMode::kThreadPerRank));

  const std::string a = obs::snapshot_timeline_json(first.report.snapshots);
  EXPECT_EQ(a, obs::snapshot_timeline_json(second.report.snapshots));
  EXPECT_EQ(a, obs::snapshot_timeline_json(threads.report.snapshots));
}

}  // namespace
}  // namespace hprs::sched
