// End-to-end scene-service properties: rate limits and in-flight rank
// quotas reject with named reasons while the rest of the stream proceeds;
// batched runs return outputs bit-identical to unbatched runs of the same
// stream (and finish no later); the whole service plane -- records,
// outputs, per-tenant SLA summaries -- is bit-identical across repeated
// runs and both executor modes, including at fleet scale
// (HPRS_STRESS_RANKS shrinks the 192-rank world for sanitizer runs).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "obs/run_summary.hpp"
#include "serve/service.hpp"
#include "serve/traffic.hpp"
#include "test_scenes.hpp"

namespace hprs::serve {
namespace {

simnet::Platform cluster(std::size_t n) {
  std::vector<simnet::ProcessorSpec> procs;
  for (std::size_t i = 0; i < n; ++i) {
    procs.push_back(simnet::ProcessorSpec{
        "p" + std::to_string(i), "t",
        0.001 * static_cast<double>(1 + i % 3), 1024, 512, 0});
  }
  return simnet::Platform("serve-now", std::move(procs), {{10.0}});
}

vmpi::Options fast_options(
    vmpi::ExecMode mode = vmpi::ExecMode::kBoundedExecutor) {
  vmpi::Options o;
  o.per_message_latency_s = 0.0;
  o.deadlock_timeout_s = 120.0;
  o.exec_mode = mode;
  return o;
}

/// A small trace whose tenants use test-sized parameters.
std::vector<sched::JobSpec> small_trace(std::size_t jobs, int max_ranks,
                                        double duration_s = 2.0,
                                        std::uint64_t seed = 5) {
  TraceConfig config = preset_trace("tenant-mix");
  config.jobs = jobs;
  config.duration_s = duration_s;
  config.seed = seed;
  for (TenantProfile& tenant : config.tenants) {
    tenant.targets = 4;
    tenant.classes = 3;
    tenant.skewers = 32;
    tenant.max_ranks = std::min(tenant.max_ranks, max_ranks);
    tenant.min_ranks = std::min(tenant.min_ranks, tenant.max_ranks);
  }
  return generate_trace(config);
}

void expect_service_equal(const ServiceResult& a, const ServiceResult& b) {
  ASSERT_EQ(a.schedule.records.size(), b.schedule.records.size());
  for (std::size_t i = 0; i < a.schedule.records.size(); ++i) {
    const sched::JobRecord& ra = a.schedule.records[i];
    const sched::JobRecord& rb = b.schedule.records[i];
    EXPECT_EQ(ra.id, rb.id) << "req " << i;
    EXPECT_EQ(ra.dispatch_s, rb.dispatch_s) << "req " << i;
    EXPECT_EQ(ra.finish_s, rb.finish_s) << "req " << i;
    EXPECT_EQ(ra.members, rb.members) << "req " << i;
    EXPECT_EQ(ra.busy_s, rb.busy_s) << "req " << i;
    EXPECT_EQ(ra.state, rb.state) << "req " << i;
    EXPECT_EQ(ra.error, rb.error) << "req " << i;
    EXPECT_EQ(ra.tenant, rb.tenant) << "req " << i;
    EXPECT_EQ(ra.batched_into, rb.batched_into) << "req " << i;
    EXPECT_EQ(ra.batch_fanout, rb.batch_fanout) << "req " << i;
  }
  ASSERT_EQ(a.schedule.outputs.size(), b.schedule.outputs.size());
  for (std::size_t i = 0; i < a.schedule.outputs.size(); ++i) {
    EXPECT_EQ(a.schedule.outputs[i].targets, b.schedule.outputs[i].targets);
    EXPECT_EQ(a.schedule.outputs[i].labels, b.schedule.outputs[i].labels);
  }
  // The whole SLA plane, compared as serialized documents: any drift in
  // any percentile of any tenant fails character-exactly.
  obs::RunSummary sa, sb;
  add_sla_summary(sa, "serve", a);
  add_sla_summary(sb, "serve", b);
  EXPECT_EQ(sa.to_json(), sb.to_json());
}

TEST(ServeServiceTest, RateLimitRejectsWithNamedReasons) {
  // Pure pre-pass: no engine needed.
  std::vector<sched::JobSpec> stream;
  for (std::size_t k = 0; k < 6; ++k) {
    sched::JobSpec spec;
    spec.id = k + 1;
    spec.arrival_s = static_cast<double>(k);
    spec.tenant = "metered";
    stream.push_back(spec);
  }
  sched::JobSpec late;
  late.id = 7;
  late.arrival_s = 150.0;
  late.tenant = "metered";
  stream.push_back(late);

  TenantQuotas quotas;
  quotas["metered"].rate_limit = 2;
  quotas["metered"].rate_window_s = 100.0;
  std::vector<RateRejection> rejected;
  const auto admitted = apply_rate_limits(stream, quotas, rejected);
  // First two fill the window; the next four are refused; the late request
  // arrives after the window slid and is admitted again.
  ASSERT_EQ(rejected.size(), 4u);
  EXPECT_EQ(admitted.size(), 3u);
  EXPECT_EQ(admitted.back().id, 7u);
  for (const RateRejection& r : rejected) {
    EXPECT_EQ(r.reason.rfind("quota:rate_limit tenant 'metered'", 0), 0u)
        << r.reason;
  }
  EXPECT_EQ(rejected.front().pos, 2u);
}

TEST(ServeServiceTest, InflightQuotaRejectsAtArrivalWithNamedReason) {
  const simnet::Platform platform = cluster(6);
  const hsi::HsiCube scene = testing::striped_cube(32, 16, 24, 4);
  // Three identical requests: the second arrives while the first is still
  // in flight and breaches the 2-rank cap; the third arrives long after.
  std::vector<sched::JobSpec> stream;
  for (std::size_t k = 0; k < 3; ++k) {
    sched::JobSpec spec;
    spec.id = k + 1;
    spec.algorithm = sched::JobAlgorithm::kAtdca;
    spec.arrival_s = k == 2 ? 1000.0 : static_cast<double>(k) * 1e-4;
    spec.ranks = 2;
    spec.targets = 4;
    spec.tenant = "capped";
    stream.push_back(spec);
  }
  ServiceConfig config;
  config.quotas["capped"].max_inflight_ranks = 2;
  const auto result =
      run_service(platform, scene, stream, config, fast_options());
  EXPECT_EQ(result.schedule.records[0].state, sched::JobState::kCompleted);
  EXPECT_EQ(result.schedule.records[1].state, sched::JobState::kRejected);
  EXPECT_EQ(
      result.schedule.records[1].error.rfind("quota:inflight_ranks", 0), 0u)
      << result.schedule.records[1].error;
  EXPECT_EQ(result.schedule.records[2].state, sched::JobState::kCompleted);
  ASSERT_EQ(result.tenants.size(), 1u);
  EXPECT_EQ(result.tenants[0].name, "capped");
  EXPECT_EQ(result.tenants[0].rejected, 1u);
  EXPECT_EQ(result.tenants[0].completed, 2u);
}

TEST(ServeServiceTest, BatchingKeepsOutputsBitIdenticalAndFinishesNoLater) {
  const simnet::Platform platform = cluster(5);
  const hsi::HsiCube scene = testing::striped_cube(32, 16, 24, 4);
  // Six compute-equivalent requests of one shared scene (one burst at t=0
  // exercising the dispatch-time sweep, one mid-flight arrival exercising
  // the attach-to-running path) plus one distinct request.
  std::vector<sched::JobSpec> stream;
  for (std::size_t k = 0; k < 6; ++k) {
    sched::JobSpec spec;
    spec.id = k + 1;
    spec.algorithm = sched::JobAlgorithm::kAtdca;
    spec.arrival_s = k == 5 ? 1e-4 : 0.0;
    spec.ranks = 2 + static_cast<int>(k % 2);
    spec.targets = 4;
    spec.tenant = "survey";
    stream.push_back(spec);
  }
  sched::JobSpec other;
  other.id = 7;
  other.algorithm = sched::JobAlgorithm::kPct;
  other.arrival_s = 2e-4;
  other.ranks = 2;
  other.classes = 3;
  other.tenant = "tasking";
  stream.push_back(other);
  stamp_batch_keys(stream, /*scene_uid=*/0xfeed);

  ServiceConfig solo;
  solo.batching = false;
  ServiceConfig batched;
  batched.batching = true;
  const auto unbatched =
      run_service(platform, scene, stream, solo, fast_options());
  const auto fanned =
      run_service(platform, scene, stream, batched, fast_options());

  EXPECT_EQ(unbatched.batches.riders, 0u);
  EXPECT_GE(fanned.batches.riders, 4u);
  EXPECT_GE(fanned.batches.leaders, 1u);
  ASSERT_EQ(fanned.schedule.outputs.size(), stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(fanned.schedule.outputs[i].targets,
              unbatched.schedule.outputs[i].targets)
        << "req " << i;
    EXPECT_EQ(fanned.schedule.outputs[i].labels,
              unbatched.schedule.outputs[i].labels)
        << "req " << i;
  }
  // Computing once can only help the schedule.
  EXPECT_LE(fanned.schedule.makespan_s, unbatched.schedule.makespan_s);
  for (const sched::JobRecord& record : fanned.schedule.records) {
    if (record.batched_into != 0) {
      EXPECT_EQ(record.busy_s, 0.0) << "rider " << record.id;
      EXPECT_GE(record.finish_s, record.dispatch_s) << "rider " << record.id;
    }
  }
}

TEST(ServeServiceTest, ServiceBitIdenticalAcrossRunsAndExecutorModes) {
  const simnet::Platform platform = cluster(7);
  const hsi::HsiCube scene = testing::striped_cube(32, 16, 24, 4);
  const auto stream = small_trace(18, /*max_ranks=*/4);
  ServiceConfig config;
  config.batching = true;
  config.quotas["survey"].rate_limit = 4;
  config.quotas["survey"].rate_window_s = 0.5;
  config.quotas["tasking"].max_inflight_ranks = 8;
  config.record_metrics = false;

  const auto first = run_service(platform, scene, stream, config,
                                 fast_options());
  const auto second = run_service(platform, scene, stream, config,
                                  fast_options());
  const auto threads =
      run_service(platform, scene, stream, config,
                  fast_options(vmpi::ExecMode::kThreadPerRank));
  expect_service_equal(first, second);
  expect_service_equal(first, threads);
  // Every request is accounted for exactly once across the tenant SLAs.
  std::size_t requests = 0;
  for (const TenantSla& sla : first.tenants) requests += sla.requests;
  EXPECT_EQ(requests, stream.size());
  EXPECT_FALSE(sla_table(first).empty());
}

TEST(ServeServiceTest, StressManyRanksServiceBitIdentical) {
  const int n = env_int_or("HPRS_STRESS_RANKS", 192, 8, 4096);
  const simnet::Platform platform = cluster(static_cast<std::size_t>(n));
  const hsi::HsiCube scene = testing::striped_cube(32, 16, 24, 4);
  auto stream = small_trace(10, std::max(2, n / 8), /*duration_s=*/1.0);
  ServiceConfig config;
  config.batching = true;
  config.record_metrics = false;
  const auto bounded =
      run_service(platform, scene, stream, config, fast_options());
  const auto threads =
      run_service(platform, scene, stream, config,
                  fast_options(vmpi::ExecMode::kThreadPerRank));
  expect_service_equal(bounded, threads);
  EXPECT_EQ(bounded.schedule.completed() + bounded.schedule.rejected(),
            stream.size());
}

}  // namespace
}  // namespace hprs::serve
