#include "linalg/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/error.hpp"

namespace hprs::linalg {
namespace {

TEST(ThreadPoolTest, DefaultsToOneThread) {
  // The suite never exports HPRS_KERNEL_THREADS, so the latched default
  // applies (tests that want more use ScopedKernelThreads).
  EXPECT_GE(kernel_threads(), 1u);
}

TEST(ThreadPoolTest, ScopedOverrideRestoresOnExit) {
  const std::size_t before = kernel_threads();
  {
    const ScopedKernelThreads scoped(5);
    EXPECT_EQ(kernel_threads(), 5u);
  }
  EXPECT_EQ(kernel_threads(), before);
}

TEST(ThreadPoolTest, RejectsZeroThreads) {
  EXPECT_THROW(set_kernel_threads(0), Error);
}

TEST(ThreadPoolTest, SingleWorkerRunsInline) {
  const ScopedKernelThreads scoped(1);
  std::size_t calls = 0;
  parallel_region(8, [&](std::size_t worker, std::size_t workers) {
    EXPECT_EQ(worker, 0u);
    EXPECT_EQ(workers, 1u);
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ThreadPoolTest, EveryWorkerIndexRunsExactlyOnce) {
  const ScopedKernelThreads scoped(4);
  std::vector<std::atomic<int>> hits(4);
  parallel_region(100, [&](std::size_t worker, std::size_t workers) {
    EXPECT_EQ(workers, 4u);
    hits[worker].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, MaxWorkersCapsTheRegion) {
  const ScopedKernelThreads scoped(8);
  std::atomic<std::size_t> seen_workers{0};
  parallel_region(3, [&](std::size_t, std::size_t workers) {
    seen_workers.store(workers);
  });
  EXPECT_EQ(seen_workers.load(), 3u);
}

TEST(ThreadPoolTest, DisjointOwnershipProducesTheSerialSum) {
  // The canonical usage pattern: each worker owns a contiguous block of a
  // shared output; the result must match the serial fill at any width.
  constexpr std::size_t kN = 1013;
  std::vector<double> serial(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    serial[i] = static_cast<double>(i) * 0.5;
  }
  for (const std::size_t threads : {2u, 4u, 7u}) {
    const ScopedKernelThreads scoped(threads);
    std::vector<double> out(kN, -1.0);
    parallel_region(kN, [&](std::size_t worker, std::size_t workers) {
      const std::size_t per = (kN + workers - 1) / workers;
      const std::size_t b = worker * per;
      const std::size_t e = std::min(kN, b + per);
      for (std::size_t i = b; i < e; ++i) {
        out[i] = static_cast<double>(i) * 0.5;
      }
    });
    EXPECT_EQ(out, serial) << threads << " threads";
  }
}

TEST(ThreadPoolTest, NestedRegionsRunInlineWithoutDeadlock) {
  const ScopedKernelThreads scoped(4);
  std::atomic<int> inner_calls{0};
  parallel_region(4, [&](std::size_t, std::size_t) {
    parallel_region(4, [&](std::size_t worker, std::size_t workers) {
      // A nested region must not recurse into the pool: single worker.
      EXPECT_EQ(worker, 0u);
      EXPECT_EQ(workers, 1u);
      inner_calls.fetch_add(1);
    });
  });
  EXPECT_EQ(inner_calls.load(), 4);
}

TEST(ThreadPoolTest, WorkerExceptionPropagatesToTheCaller) {
  const ScopedKernelThreads scoped(4);
  EXPECT_THROW(
      parallel_region(4,
                      [&](std::size_t worker, std::size_t) {
                        if (worker == 2) throw Error("boom");
                      }),
      Error);
  // The pool stays usable after a throwing region.
  std::atomic<int> calls{0};
  parallel_region(4, [&](std::size_t, std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 4);
}

TEST(ThreadPoolTest, BackToBackRegionsReuseThePool) {
  const ScopedKernelThreads scoped(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 50; ++round) {
    parallel_region(4, [&](std::size_t worker, std::size_t) {
      total.fetch_add(static_cast<long>(worker) + 1);
    });
  }
  EXPECT_EQ(total.load(), 50 * (1 + 2 + 3 + 4));
}

}  // namespace
}  // namespace hprs::linalg
