#include "core/runner.hpp"

#include <gtest/gtest.h>

#include "simnet/platform.hpp"
#include "test_scenes.hpp"

namespace hprs::core {
namespace {

TEST(RunnerNamesTest, AlgorithmNamesAreStable) {
  EXPECT_STREQ(to_string(Algorithm::kAtdca), "ATDCA");
  EXPECT_STREQ(to_string(Algorithm::kUfcls), "UFCLS");
  EXPECT_STREQ(to_string(Algorithm::kPct), "PCT");
  EXPECT_STREQ(to_string(Algorithm::kMorph), "MORPH");
}

TEST(RunnerNamesTest, DisplayNamesFollowThePaper) {
  EXPECT_EQ(display_name(Algorithm::kAtdca, PartitionPolicy::kHeterogeneous),
            "Hetero-ATDCA");
  EXPECT_EQ(display_name(Algorithm::kMorph, PartitionPolicy::kHomogeneous),
            "Homo-MORPH");
}

struct RunnerCase {
  Algorithm algorithm;
  PartitionPolicy policy;
};

class RunnerSweep : public ::testing::TestWithParam<RunnerCase> {};

TEST_P(RunnerSweep, DispatchesAndProducesTheRightOutput) {
  const auto [algorithm, policy] = GetParam();
  const auto cube = testing::striped_cube(48, 24, 24, 3);
  RunnerConfig cfg;
  cfg.algorithm = algorithm;
  cfg.policy = policy;
  cfg.targets = 4;
  cfg.classes = 3;
  cfg.morph_iterations = 2;
  cfg.kernel_radius = 1;
  const auto out = run_algorithm(simnet::fully_heterogeneous(), cube, cfg);

  EXPECT_GT(out.report.total_time, 0.0);
  EXPECT_EQ(out.report.ranks.size(), 16u);
  const bool is_detector =
      algorithm == Algorithm::kAtdca || algorithm == Algorithm::kUfcls;
  if (is_detector) {
    EXPECT_EQ(out.targets.size(), 4u);
    EXPECT_TRUE(out.labels.empty());
  } else {
    EXPECT_EQ(out.labels.size(), cube.pixel_count());
    EXPECT_GE(out.label_count, 1u);
    EXPECT_TRUE(out.targets.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, RunnerSweep,
    ::testing::Values(
        RunnerCase{Algorithm::kAtdca, PartitionPolicy::kHeterogeneous},
        RunnerCase{Algorithm::kAtdca, PartitionPolicy::kHomogeneous},
        RunnerCase{Algorithm::kUfcls, PartitionPolicy::kHeterogeneous},
        RunnerCase{Algorithm::kUfcls, PartitionPolicy::kHomogeneous},
        RunnerCase{Algorithm::kPct, PartitionPolicy::kHeterogeneous},
        RunnerCase{Algorithm::kPct, PartitionPolicy::kHomogeneous},
        RunnerCase{Algorithm::kMorph, PartitionPolicy::kHeterogeneous},
        RunnerCase{Algorithm::kMorph, PartitionPolicy::kHomogeneous}),
    [](const auto& param_info) {
      std::string name =
          display_name(param_info.param.algorithm, param_info.param.policy);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(RunnerTest, DataStagingFlagRaisesCommunication) {
  const auto cube = testing::striped_cube(48, 24, 24, 3);
  RunnerConfig cfg;
  cfg.algorithm = Algorithm::kAtdca;
  cfg.targets = 3;
  const auto base = run_algorithm(simnet::fully_heterogeneous(), cube, cfg);
  cfg.charge_data_staging = true;
  const auto staged = run_algorithm(simnet::fully_heterogeneous(), cube, cfg);
  EXPECT_GT(staged.report.total_bytes_moved(),
            3 * base.report.total_bytes_moved());
  EXPECT_GT(staged.report.total_time, base.report.total_time);
}

}  // namespace
}  // namespace hprs::core
