#include "simnet/platform.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace hprs::simnet {
namespace {

TEST(FullyHeterogeneousTest, MatchesPaperTable1) {
  const Platform p = fully_heterogeneous();
  ASSERT_EQ(p.size(), 16u);
  EXPECT_EQ(p.segment_count(), 4u);
  EXPECT_FALSE(p.switched_fabric());

  // Spot-check the published cycle-times (secs/megaflop).
  EXPECT_DOUBLE_EQ(p.cycle_time(0), 0.0058);   // p1
  EXPECT_DOUBLE_EQ(p.cycle_time(1), 0.0102);   // p2
  EXPECT_DOUBLE_EQ(p.cycle_time(2), 0.0026);   // p3 (fastest)
  EXPECT_DOUBLE_EQ(p.cycle_time(9), 0.0451);   // p10 (slowest)
  EXPECT_DOUBLE_EQ(p.cycle_time(15), 0.0131);  // p16

  // Memory and cache columns.
  EXPECT_EQ(p.processor(2).memory_mb, 7748u);
  EXPECT_EQ(p.processor(9).memory_mb, 512u);
  EXPECT_EQ(p.processor(9).cache_kb, 2048u);

  // Segment structure: p1-p4 -> s1, p5-p8 -> s2, p9-p10 -> s3, rest -> s4.
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(p.segment_of(i), 0u);
  for (std::size_t i = 4; i < 8; ++i) EXPECT_EQ(p.segment_of(i), 1u);
  for (std::size_t i = 8; i < 10; ++i) EXPECT_EQ(p.segment_of(i), 2u);
  for (std::size_t i = 10; i < 16; ++i) EXPECT_EQ(p.segment_of(i), 3u);
}

TEST(FullyHeterogeneousTest, MatchesPaperTable2) {
  const Platform p = fully_heterogeneous();
  // Intra-segment capacities (diagonal of Table 2).
  EXPECT_DOUBLE_EQ(p.link_ms_per_mbit(0, 1), 19.26);
  EXPECT_DOUBLE_EQ(p.link_ms_per_mbit(4, 5), 17.65);
  EXPECT_DOUBLE_EQ(p.link_ms_per_mbit(8, 9), 16.38);
  EXPECT_DOUBLE_EQ(p.link_ms_per_mbit(10, 11), 14.05);
  // Cross-segment capacities.
  EXPECT_DOUBLE_EQ(p.link_ms_per_mbit(0, 4), 48.31);
  EXPECT_DOUBLE_EQ(p.link_ms_per_mbit(0, 8), 96.62);
  EXPECT_DOUBLE_EQ(p.link_ms_per_mbit(0, 15), 154.76);
  EXPECT_DOUBLE_EQ(p.link_ms_per_mbit(4, 15), 106.45);
  EXPECT_DOUBLE_EQ(p.link_ms_per_mbit(8, 15), 58.14);
}

TEST(PlatformTest, LinksAreSymmetric) {
  const Platform p = fully_heterogeneous();
  for (std::size_t i = 0; i < p.size(); ++i) {
    for (std::size_t j = 0; j < p.size(); ++j) {
      EXPECT_DOUBLE_EQ(p.link_ms_per_mbit(i, j), p.link_ms_per_mbit(j, i));
    }
  }
}

TEST(FullyHomogeneousTest, IsUniform) {
  const Platform p = fully_homogeneous();
  ASSERT_EQ(p.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(p.cycle_time(i), 0.0131);
  }
  EXPECT_DOUBLE_EQ(p.link_ms_per_mbit(0, 15), 26.64);
  EXPECT_DOUBLE_EQ(p.speed_heterogeneity(), 1.0);
  EXPECT_DOUBLE_EQ(p.link_heterogeneity(), 1.0);
}

TEST(PartiallyHeterogeneousTest, HetProcessorsHomoNetwork) {
  const Platform p = partially_heterogeneous();
  EXPECT_DOUBLE_EQ(p.cycle_time(9), 0.0451);
  EXPECT_GT(p.speed_heterogeneity(), 10.0);
  EXPECT_DOUBLE_EQ(p.link_heterogeneity(), 1.0);
  EXPECT_DOUBLE_EQ(p.link_ms_per_mbit(0, 9), 26.64);
}

TEST(PartiallyHomogeneousTest, HomoProcessorsHetNetwork) {
  const Platform p = partially_homogeneous();
  EXPECT_DOUBLE_EQ(p.speed_heterogeneity(), 1.0);
  EXPECT_GT(p.link_heterogeneity(), 10.0);
  // Keeps the fully heterogeneous segment structure.
  EXPECT_DOUBLE_EQ(p.link_ms_per_mbit(0, 15), 154.76);
  EXPECT_FALSE(p.crosses_segments(0, 3));
  EXPECT_TRUE(p.crosses_segments(0, 15));
}

TEST(ThunderheadTest, ScalesToRequestedNodeCount) {
  for (const std::size_t n : {1u, 4u, 64u, 256u}) {
    const Platform p = thunderhead(n);
    EXPECT_EQ(p.size(), n);
    EXPECT_TRUE(p.switched_fabric());
    EXPECT_DOUBLE_EQ(p.cycle_time(0), 0.0058);
    EXPECT_EQ(p.processor(0).memory_mb, 1024u);
    EXPECT_EQ(p.processor(0).cache_kb, 512u);
  }
  EXPECT_THROW((void)thunderhead(0), Error);
}

TEST(PlatformTest, AverageSpeedMatchesHandComputation) {
  const Platform p = fully_homogeneous();
  EXPECT_NEAR(p.average_speed(), 1.0 / 0.0131, 1e-9);
}

TEST(PlatformTest, AverageLinkOfUniformNetworkIsTheLink) {
  const Platform p = fully_homogeneous();
  EXPECT_NEAR(p.average_link_ms_per_mbit(), 26.64, 1e-9);
}

TEST(PlatformTest, SpeedHeterogeneityOfTable1) {
  const Platform p = fully_heterogeneous();
  EXPECT_NEAR(p.speed_heterogeneity(), 0.0451 / 0.0026, 1e-9);
}

TEST(SyntheticPlatformTest, RespectsSpreadAndMean) {
  const Platform p = synthetic_heterogeneous(8, 4.0, 0.01, 20.0);
  ASSERT_EQ(p.size(), 8u);
  EXPECT_NEAR(p.speed_heterogeneity(), 4.0, 1e-9);
  double mean = 0.0;
  for (std::size_t i = 0; i < 8; ++i) mean += p.cycle_time(i);
  EXPECT_NEAR(mean / 8, 0.01, 1e-12);
}

TEST(SyntheticPlatformTest, SpreadOneIsHomogeneous) {
  const Platform p = synthetic_heterogeneous(4, 1.0, 0.01, 20.0);
  EXPECT_NEAR(p.speed_heterogeneity(), 1.0, 1e-12);
}

TEST(SyntheticPlatformTest, ValidatesArguments) {
  EXPECT_THROW((void)synthetic_heterogeneous(0, 2.0, 0.01, 1.0), Error);
  EXPECT_THROW((void)synthetic_heterogeneous(4, 0.5, 0.01, 1.0), Error);
  EXPECT_THROW((void)synthetic_heterogeneous(4, 2.0, -1.0, 1.0), Error);
}

TEST(PlatformValidationTest, RejectsMalformedDescriptions) {
  const ProcessorSpec ok{"p1", "x", 0.01, 128, 64, 0};
  // Empty processor list.
  EXPECT_THROW(Platform("x", {}, {{1.0}}), Error);
  // Asymmetric capacities.
  EXPECT_THROW(Platform("x", {ok}, {{1.0, 2.0}, {3.0, 1.0}}), Error);
  // Non-square capacity matrix.
  EXPECT_THROW(Platform("x", {ok}, {{1.0, 2.0}}), Error);
  // Processor referencing unknown segment.
  ProcessorSpec bad_seg = ok;
  bad_seg.segment = 5;
  EXPECT_THROW(Platform("x", {bad_seg}, {{1.0}}), Error);
  // Non-positive cycle time.
  ProcessorSpec bad_w = ok;
  bad_w.cycle_time = 0.0;
  EXPECT_THROW(Platform("x", {bad_w}, {{1.0}}), Error);
}

TEST(PlatformTest, ProcessorIndexOutOfRangeThrows) {
  const Platform p = fully_homogeneous();
  EXPECT_THROW((void)p.processor(16), Error);
}

TEST(AcceleratedNowTest, CpuNodesFirstThenAcceleratedNodes) {
  const Platform p = accelerated_now(12, 4);
  ASSERT_EQ(p.size(), 16u);
  EXPECT_TRUE(p.has_accelerated());
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_FALSE(p.accelerated(i)) << i;
    EXPECT_DOUBLE_EQ(p.cycle_time(i), 0.0131);
    EXPECT_DOUBLE_EQ(p.stage_latency_s(i), 0.0);
    EXPECT_DOUBLE_EQ(p.stage_seconds(i, 1 << 20), 0.0);
  }
  for (std::size_t i = 12; i < 16; ++i) {
    EXPECT_TRUE(p.accelerated(i)) << i;
    EXPECT_DOUBLE_EQ(p.cycle_time(i), 0.0131 / 40.0);
    EXPECT_DOUBLE_EQ(p.stage_latency_s(i), 2e-3);
    EXPECT_GT(p.stage_seconds(i, 1 << 20), 0.0);
  }
  // Everything shares the classic homogeneous-NOW segment.
  EXPECT_EQ(p.segment_count(), 1u);
  EXPECT_DOUBLE_EQ(p.link_ms_per_mbit(0, 15), 26.64);
}

TEST(AcceleratedNowTest, HistoricPlatformsHaveNoAccelerators) {
  for (const auto& p :
       {fully_heterogeneous(), fully_homogeneous(), partially_heterogeneous(),
        partially_homogeneous(), thunderhead(8)}) {
    EXPECT_FALSE(p.has_accelerated()) << p.name();
    for (std::size_t i = 0; i < p.size(); ++i) {
      EXPECT_DOUBLE_EQ(p.stage_seconds(i, 1 << 24), 0.0);
    }
  }
}

TEST(PlatformValidationTest, RejectsStagingCostsOnPlainCpus) {
  ProcessorSpec p{"p1", "x", 0.01, 128, 64, 0};
  p.stage_latency_ms = 1.0;  // staging on a non-accelerated node
  EXPECT_THROW(Platform("x", {p}, {{1.0}}), Error);
  p.stage_latency_ms = 0.0;
  p.accelerated = true;
  p.stage_ms_per_mbit = -0.5;  // negative staging cost
  EXPECT_THROW(Platform("x", {p}, {{1.0}}), Error);
  p.stage_ms_per_mbit = 0.06;
  p.stage_latency_ms = 2.0;
  EXPECT_NO_THROW(Platform("x", {p}, {{1.0}}));
}

}  // namespace
}  // namespace hprs::simnet
