#include "hsi/scene.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "linalg/vec.hpp"

namespace hprs::hsi {
namespace {

SceneConfig small_config() {
  SceneConfig cfg;
  cfg.rows = 48;
  cfg.cols = 48;
  cfg.bands = 64;
  return cfg;
}

TEST(SceneTest, DimensionsMatchConfig) {
  const Scene s = generate_wtc_scene(small_config());
  EXPECT_EQ(s.cube.rows(), 48u);
  EXPECT_EQ(s.cube.cols(), 48u);
  EXPECT_EQ(s.cube.bands(), 64u);
  EXPECT_EQ(s.truth.rows, 48u);
  EXPECT_EQ(s.truth.cols, 48u);
  EXPECT_EQ(s.truth.labels.size(), 48u * 48u);
}

TEST(SceneTest, IsDeterministicInTheSeed) {
  const Scene a = generate_wtc_scene(small_config());
  const Scene b = generate_wtc_scene(small_config());
  ASSERT_EQ(a.cube.sample_count(), b.cube.sample_count());
  for (std::size_t i = 0; i < a.cube.sample_count(); ++i) {
    ASSERT_EQ(a.cube.samples()[i], b.cube.samples()[i]);
  }
  EXPECT_EQ(a.truth.labels, b.truth.labels);
}

TEST(SceneTest, DifferentSeedsProduceDifferentScenes) {
  SceneConfig cfg = small_config();
  const Scene a = generate_wtc_scene(cfg);
  cfg.seed += 1;
  const Scene b = generate_wtc_scene(cfg);
  std::size_t differing = 0;
  for (std::size_t i = 0; i < a.cube.sample_count(); ++i) {
    if (a.cube.samples()[i] != b.cube.samples()[i]) ++differing;
  }
  EXPECT_GT(differing, a.cube.sample_count() / 2);
}

TEST(SceneTest, HasSevenLabeledHotSpots) {
  const Scene s = generate_wtc_scene(small_config());
  ASSERT_EQ(s.truth.hot_spots.size(), 7u);
  std::set<char> labels;
  for (const auto& hs : s.truth.hot_spots) {
    labels.insert(hs.label);
    EXPECT_LT(hs.row, s.truth.rows);
    EXPECT_LT(hs.col, s.truth.cols);
    EXPECT_GE(hs.temp_f, 700.0);
    EXPECT_LE(hs.temp_f, 1300.0);
  }
  EXPECT_EQ(labels, (std::set<char>{'A', 'B', 'C', 'D', 'E', 'F', 'G'}));
}

TEST(SceneTest, PaperPinsTheExtremeTemperatures) {
  const Scene s = generate_wtc_scene(small_config());
  for (const auto& hs : s.truth.hot_spots) {
    if (hs.label == 'F') {
      EXPECT_DOUBLE_EQ(hs.temp_f, 700.0);
    }
    if (hs.label == 'G') {
      EXPECT_DOUBLE_EQ(hs.temp_f, 1300.0);
    }
  }
}

TEST(SceneTest, HotSpotPixelsOutshineTheirFirelessTwins) {
  // Fire injection happens after the surface rendering, so two scenes
  // differing only in fire amplitude share identical base pixels; every
  // hot-spot pixel must gain energy from its fire.
  const Scene lit = generate_wtc_scene(small_config());
  SceneConfig dark_cfg = small_config();
  dark_cfg.fire_amplitude = 1e-6;
  const Scene dark = generate_wtc_scene(dark_cfg);
  for (const auto& hs : lit.truth.hot_spots) {
    const double fire = linalg::norm_sq(lit.cube.pixel(hs.row, hs.col));
    const double base = linalg::norm_sq(dark.cube.pixel(hs.row, hs.col));
    EXPECT_GT(fire, base * 1.02) << "hot spot " << hs.label;
  }
}

TEST(SceneTest, HotSpotPixelLookupWorks) {
  const Scene s = generate_wtc_scene(small_config());
  const auto px = hot_spot_pixel(s, 'G');
  EXPECT_EQ(px.size(), s.cube.bands());
  EXPECT_THROW((void)hot_spot_pixel(s, 'Z'), Error);
}

TEST(SceneTest, GroundTruthContainsAllDebrisClasses) {
  const Scene s = generate_wtc_scene(small_config());
  std::set<std::uint8_t> classes(s.truth.labels.begin(),
                                 s.truth.labels.end());
  for (const Material m : debris_materials()) {
    EXPECT_TRUE(classes.count(static_cast<std::uint8_t>(m)))
        << "missing " << to_string(m);
  }
  EXPECT_TRUE(classes.count(static_cast<std::uint8_t>(Material::kWater)));
  EXPECT_TRUE(
      classes.count(static_cast<std::uint8_t>(Material::kVegetation)));
}

TEST(SceneTest, WestEdgeIsWater) {
  const Scene s = generate_wtc_scene(small_config());
  for (std::size_t r = 0; r < s.truth.rows; ++r) {
    EXPECT_EQ(s.truth.label_at(r, 0), Material::kWater);
  }
}

TEST(SceneTest, AllSamplesAreFiniteAndNonNegative) {
  const Scene s = generate_wtc_scene(small_config());
  for (float v : s.cube.samples()) {
    ASSERT_TRUE(std::isfinite(v));
    ASSERT_GE(v, 0.0f);
  }
}

TEST(SceneTest, RejectsDegenerateConfigs) {
  SceneConfig cfg = small_config();
  cfg.rows = 8;
  EXPECT_THROW((void)generate_wtc_scene(cfg), Error);
  cfg = small_config();
  cfg.bands = 4;
  EXPECT_THROW((void)generate_wtc_scene(cfg), Error);
  cfg = small_config();
  cfg.snr = 0.0;
  EXPECT_THROW((void)generate_wtc_scene(cfg), Error);
}

TEST(SceneTest, SnrControlsNoiseLevel) {
  SceneConfig noisy = small_config();
  noisy.snr = 20.0;
  SceneConfig clean = small_config();
  clean.snr = 2000.0;
  const Scene a = generate_wtc_scene(noisy);
  const Scene b = generate_wtc_scene(clean);
  // Estimate pixel-to-pixel roughness inside the water body (uniform
  // region): the noisy scene must be rougher.
  const auto roughness = [](const Scene& s) {
    double acc = 0.0;
    for (std::size_t r = 1; r < 20; ++r) {
      const auto p = s.cube.pixel(r, 0);
      const auto q = s.cube.pixel(r + 1, 0);
      for (std::size_t b2 = 0; b2 < p.size(); ++b2) {
        acc += std::abs(static_cast<double>(p[b2]) - q[b2]);
      }
    }
    return acc;
  };
  EXPECT_GT(roughness(a), roughness(b));
}

TEST(SceneTest, FireAmplitudeScalesHotSpotBrightness) {
  SceneConfig weak = small_config();
  weak.fire_amplitude = 0.5;
  SceneConfig strong = small_config();
  strong.fire_amplitude = 4.0;
  const Scene a = generate_wtc_scene(weak);
  const Scene b = generate_wtc_scene(strong);
  const auto g_a = hot_spot_pixel(a, 'G');
  const auto g_b = hot_spot_pixel(b, 'G');
  EXPECT_GT(linalg::norm_sq(g_b), linalg::norm_sq(g_a));
}

class SceneSizeSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(SceneSizeSweep, GeneratesConsistentTruthAtAnySize) {
  SceneConfig cfg = small_config();
  cfg.rows = GetParam().first;
  cfg.cols = GetParam().second;
  const Scene s = generate_wtc_scene(cfg);
  EXPECT_EQ(s.truth.labels.size(), cfg.rows * cfg.cols);
  EXPECT_EQ(s.truth.hot_spots.size(), 7u);
  for (const auto& hs : s.truth.hot_spots) {
    EXPECT_LT(hs.row, cfg.rows);
    EXPECT_LT(hs.col, cfg.cols);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SceneSizeSweep,
    ::testing::Values(std::pair<std::size_t, std::size_t>{16, 16},
                      std::pair<std::size_t, std::size_t>{16, 96},
                      std::pair<std::size_t, std::size_t>{96, 16},
                      std::pair<std::size_t, std::size_t>{64, 64}));

}  // namespace
}  // namespace hprs::hsi
