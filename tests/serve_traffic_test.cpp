// Trace-generator properties: same seed -> byte-identical streams, seeds
// diverge, JSON round-trip is exact (stream AND serialized bytes), the
// diurnal shape crowds its peaks, bursts concentrate arrivals, and the
// tenant mix respects its weights.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "serve/batcher.hpp"
#include "serve/traffic.hpp"

namespace hprs::serve {
namespace {

void expect_traces_equal(const std::vector<sched::JobSpec>& a,
                         const std::vector<sched::JobSpec>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << "req " << i;
    EXPECT_EQ(a[i].algorithm, b[i].algorithm) << "req " << i;
    EXPECT_EQ(a[i].arrival_s, b[i].arrival_s) << "req " << i;
    EXPECT_EQ(a[i].ranks, b[i].ranks) << "req " << i;
    EXPECT_EQ(a[i].targets, b[i].targets) << "req " << i;
    EXPECT_EQ(a[i].classes, b[i].classes) << "req " << i;
    EXPECT_EQ(a[i].iterations, b[i].iterations) << "req " << i;
    EXPECT_EQ(a[i].kernel_radius, b[i].kernel_radius) << "req " << i;
    EXPECT_EQ(a[i].skewers, b[i].skewers) << "req " << i;
    EXPECT_EQ(a[i].seed, b[i].seed) << "req " << i;
    EXPECT_EQ(a[i].sad_threshold, b[i].sad_threshold) << "req " << i;
    EXPECT_EQ(a[i].replication, b[i].replication) << "req " << i;
    EXPECT_EQ(a[i].tenant, b[i].tenant) << "req " << i;
    EXPECT_EQ(a[i].batch_key, b[i].batch_key) << "req " << i;
  }
}

std::size_t count_in(const std::vector<sched::JobSpec>& trace, double lo,
                     double hi) {
  std::size_t n = 0;
  for (const sched::JobSpec& spec : trace) {
    if (spec.arrival_s >= lo && spec.arrival_s < hi) ++n;
  }
  return n;
}

/// Max request count over sliding windows of `width` seconds.
std::size_t max_window(const std::vector<sched::JobSpec>& trace,
                       double width) {
  std::size_t best = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    std::size_t n = 0;
    for (std::size_t j = i; j < trace.size(); ++j) {
      if (trace[j].arrival_s >= trace[i].arrival_s + width) break;
      ++n;
    }
    best = std::max(best, n);
  }
  return best;
}

TEST(ServeTrafficTest, SameSeedProducesIdenticalTrace) {
  for (const char* name : {"steady", "diurnal", "bursty", "tenant-mix"}) {
    TraceConfig config = preset_trace(name);
    config.jobs = 128;
    config.seed = 42;
    expect_traces_equal(generate_trace(config), generate_trace(config));
  }
}

TEST(ServeTrafficTest, DifferentSeedsDiverge) {
  TraceConfig config = preset_trace("steady");
  config.jobs = 64;
  config.seed = 1;
  const auto a = generate_trace(config);
  config.seed = 2;
  const auto b = generate_trace(config);
  ASSERT_EQ(a.size(), b.size());
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff = any_diff || a[i].arrival_s != b[i].arrival_s;
  }
  EXPECT_TRUE(any_diff);
}

TEST(ServeTrafficTest, TraceIsArrivalSortedWithSequentialIds) {
  TraceConfig config = preset_trace("bursty");
  config.jobs = 200;
  const auto trace = generate_trace(config);
  ASSERT_EQ(trace.size(), config.jobs);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].id, i + 1);
    EXPECT_GE(trace[i].arrival_s, 0.0);
    EXPECT_LE(trace[i].arrival_s, config.duration_s);
    if (i > 0) {
      EXPECT_GE(trace[i].arrival_s, trace[i - 1].arrival_s);
    }
    EXPECT_GE(trace[i].ranks, 1);
    EXPECT_NE(trace[i].batch_key, 0u);
  }
}

TEST(ServeTrafficTest, JsonRoundTripIsExact) {
  TraceConfig config = preset_trace("tenant-mix");
  config.jobs = 96;
  config.seed = 9;
  const auto trace = generate_trace(config);
  const std::string json = trace_json(trace);
  const auto replayed = parse_trace_json(json);
  expect_traces_equal(trace, replayed);
  // Serializing the replay reproduces the document byte for byte.
  EXPECT_EQ(trace_json(replayed), json);
}

TEST(ServeTrafficTest, ParseRejectsMalformedDocuments) {
  EXPECT_THROW(parse_trace_json("not json"), Error);
  // A truncated document (claims one request, carries none) must throw,
  // not silently replay short.
  EXPECT_THROW(parse_trace_json("{\n  \"trace.jobs\": 1\n}\n"), Error);
  EXPECT_THROW((void)parse_traffic_shape("nope"), Error);
}

TEST(ServeTrafficTest, DiurnalArrivalsCrowdThePeaks) {
  TraceConfig config = preset_trace("diurnal");
  config.jobs = 600;
  config.duration_s = 1000.0;
  config.diurnal_amplitude = 0.9;
  config.diurnal_cycles = 1.0;
  const auto trace = generate_trace(config);
  // rate(t) = 1 + 0.9 cos(2 pi t / T): peak bands at both ends (rate ~1.9),
  // trough around T/2 (rate ~0.1).  Equal-width bands must reflect that.
  const double T = config.duration_s;
  const std::size_t peak =
      count_in(trace, 0.0, 0.1 * T) + count_in(trace, 0.9 * T, T + 1.0);
  const std::size_t trough = count_in(trace, 0.4 * T, 0.6 * T);
  EXPECT_GT(peak, 2 * trough);
}

TEST(ServeTrafficTest, BurstyArrivalsConcentrate) {
  TraceConfig steady = preset_trace("steady");
  steady.jobs = 400;
  steady.duration_s = 1000.0;
  TraceConfig bursty = steady;
  bursty.shape = TrafficShape::kBursty;
  bursty.burst_fraction = 0.8;
  bursty.bursts = 3;
  bursty.burst_width_s = 5.0;
  // A flash crowd packs far more of the stream into its densest minute
  // than homogeneous load ever does.
  EXPECT_GE(max_window(generate_trace(bursty), 50.0),
            2 * max_window(generate_trace(steady), 50.0));
}

TEST(ServeTrafficTest, TenantMixRespectsWeightsAndSceneKeys) {
  TraceConfig config = preset_trace("tenant-mix");
  config.jobs = 600;
  const auto trace = generate_trace(config);
  std::map<std::string, std::size_t> counts;
  std::map<std::string, std::map<std::uint64_t, std::size_t>> keys;
  for (const sched::JobSpec& spec : trace) {
    ++counts[spec.tenant];
    ++keys[spec.tenant][spec.batch_key];
  }
  ASSERT_EQ(counts.size(), 3u);
  // Weights 3 : 2 : 1 must show in the request shares.
  EXPECT_GT(counts["survey"], counts["tasking"]);
  EXPECT_GT(counts["tasking"], counts["adhoc"]);
  // The survey tenant asks one question of one scene: a single shared
  // batch key (the batchable case); distinct tenants never share keys.
  EXPECT_EQ(keys["survey"].size(), 1u);
  for (const auto& [key, n] : keys["survey"]) {
    EXPECT_EQ(keys["tasking"].count(key), 0u);
    EXPECT_EQ(keys["adhoc"].count(key), 0u);
  }
}

TEST(ServeTrafficTest, BatchKeyExcludesPlacementFields) {
  sched::JobSpec a;
  a.algorithm = sched::JobAlgorithm::kPct;
  sched::JobSpec b = a;
  b.id = 99;
  b.arrival_s = 123.0;
  b.ranks = 7;
  b.tenant = "other";
  EXPECT_EQ(batch_key(a, 5), batch_key(b, 5));
  EXPECT_NE(batch_key(a, 5), batch_key(a, 6));
  b.targets = a.targets + 1;
  EXPECT_NE(batch_key(a, 5), batch_key(b, 5));
}

}  // namespace
}  // namespace hprs::serve
