#include "hsi/vd.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "hsi/scene.hpp"

namespace hprs::hsi {
namespace {

/// Cube of pure Gaussian noise: no signal sources.
HsiCube noise_cube(std::size_t pixels_side, std::size_t bands,
                   std::uint64_t seed) {
  Xoshiro256 rng(seed);
  HsiCube cube(pixels_side, pixels_side, bands);
  for (auto& v : cube.samples()) {
    v = static_cast<float>(1.0 + 0.01 * rng.normal());
  }
  return cube;
}

/// Cube mixing k strong deterministic signatures plus noise.
HsiCube mixture_cube(std::size_t side, std::size_t bands, std::size_t k,
                     std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::vector<double>> sigs(k, std::vector<double>(bands));
  for (std::size_t s = 0; s < k; ++s) {
    for (std::size_t b = 0; b < bands; ++b) {
      // Orthogonal-ish bump signatures.
      sigs[s][b] =
          0.2 + ((b * k / bands) == s ? 0.8 : 0.0) + 0.05 * rng.uniform();
    }
  }
  HsiCube cube(side, side, bands);
  for (std::size_t p = 0; p < cube.pixel_count(); ++p) {
    const std::size_t cls = p % k;
    const auto px = cube.pixel(p);
    for (std::size_t b = 0; b < bands; ++b) {
      px[b] = static_cast<float>(sigs[cls][b] + 0.005 * rng.normal());
    }
  }
  return cube;
}

TEST(VdTest, RejectsEmptyCube) {
  EXPECT_THROW((void)estimate_vd(HsiCube()), Error);
}

TEST(VdTest, PureNoiseHasLowDimensionality) {
  const auto vd = estimate_vd(noise_cube(24, 32, 7));
  // A constant-mean noise cube carries at most the mean as signal.
  EXPECT_LE(vd.dimensionality, 2u);
  EXPECT_EQ(vd.bands, 32u);
}

class VdSourceSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VdSourceSweep, DetectsSignalWithoutOverestimating) {
  // The HFC correlation/covariance comparison is conservative for
  // zero-mean-balanced class mixtures (it keys on mean-carrying sources),
  // so the requirement is: clearly more than the noise floor, never more
  // than the planted structure allows.
  const std::size_t k = GetParam();
  const auto vd = estimate_vd(mixture_cube(32, 48, k, 11 * k + 1));
  EXPECT_GE(vd.dimensionality, 2u) << "planted " << k << " sources";
  EXPECT_LE(vd.dimensionality, k + 4);
}

INSTANTIATE_TEST_SUITE_P(PlantedSources, VdSourceSweep,
                         ::testing::Values(2, 3, 5, 8));

TEST(VdTest, LowerFalseAlarmRateIsMoreConservative) {
  const HsiCube cube = mixture_cube(32, 48, 6, 3);
  const auto loose = estimate_vd(cube, 1e-2);
  const auto tight = estimate_vd(cube, 1e-6);
  EXPECT_GE(loose.dimensionality, tight.dimensionality);
}

TEST(VdTest, WtcSceneHasPlausibleIntrinsicDimensionality) {
  // The paper sets t = 18 from the intrinsic dimensionality of the real
  // scene; the synthetic surrogate carries 10 materials plus 7 fire
  // signatures, so the estimate should land in the low tens.
  SceneConfig cfg;
  cfg.rows = 48;
  cfg.cols = 48;
  cfg.bands = 64;
  const Scene scene = generate_wtc_scene(cfg);
  const auto vd = estimate_vd(scene.cube, 1e-4);
  EXPECT_GE(vd.dimensionality, 5u);
  EXPECT_LE(vd.dimensionality, 40u);
}

}  // namespace
}  // namespace hprs::hsi
