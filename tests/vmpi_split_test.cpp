// Sub-communicator correctness: Comm::split / Comm::subset construction,
// every collective (barrier / bcast / reduce-via-allreduce / gather /
// scatter) restricted to disjoint splits, overlapping group lifetimes with
// unsynchronized programs, and a 192-rank many-group stress sweep compared
// bit-for-bit across both executor modes (the TSan tier runs this file
// with HPRS_STRESS_RANKS=64).
#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "vmpi/comm.hpp"
#include "vmpi/engine.hpp"

namespace hprs::vmpi {
namespace {

/// One-segment platform with a deterministic heterogeneous speed pattern.
simnet::Platform hetero_platform(std::size_t n) {
  std::vector<simnet::ProcessorSpec> procs;
  for (std::size_t i = 0; i < n; ++i) {
    procs.push_back(simnet::ProcessorSpec{
        "p" + std::to_string(i), "t", 0.001 * static_cast<double>(1 + i % 4),
        1024, 512, 0});
  }
  return simnet::Platform("split-now", std::move(procs), {{10.0}});
}

Options fast_options(ExecMode mode = ExecMode::kBoundedExecutor) {
  Options o;
  o.per_message_latency_s = 0.0;
  o.deadlock_timeout_s = 60.0;
  o.exec_mode = mode;
  return o;
}

std::size_t stress_ranks() {
  return static_cast<std::size_t>(
      env_int_or("HPRS_STRESS_RANKS", 192, 2, 4096));
}

void expect_reports_equal(const RunReport& a, const RunReport& b) {
  ASSERT_EQ(a.ranks.size(), b.ranks.size());
  EXPECT_EQ(a.total_time, b.total_time);
  for (std::size_t r = 0; r < a.ranks.size(); ++r) {
    EXPECT_EQ(a.ranks[r].clock, b.ranks[r].clock) << "rank " << r;
    EXPECT_EQ(a.ranks[r].compute_par, b.ranks[r].compute_par) << "rank " << r;
    EXPECT_EQ(a.ranks[r].compute_seq, b.ranks[r].compute_seq) << "rank " << r;
    EXPECT_EQ(a.ranks[r].comm, b.ranks[r].comm) << "rank " << r;
    EXPECT_EQ(a.ranks[r].wait, b.ranks[r].wait) << "rank " << r;
    EXPECT_EQ(a.ranks[r].flops, b.ranks[r].flops) << "rank " << r;
    EXPECT_EQ(a.ranks[r].bytes_sent, b.ranks[r].bytes_sent) << "rank " << r;
    EXPECT_EQ(a.ranks[r].bytes_received, b.ranks[r].bytes_received)
        << "rank " << r;
  }
}

TEST(VmpiSplitTest, DisjointSplitRunsEveryCollective) {
  constexpr int kRanks = 8;
  Engine engine(hetero_platform(kRanks), fast_options());
  std::vector<int> sub_size(kRanks, 0);
  std::vector<int> sub_rank(kRanks, -1);
  std::vector<int> bcast_got(kRanks, -1);
  std::vector<int> reduce_got(kRanks, -1);
  std::vector<int> scatter_got(kRanks, -1);
  std::vector<std::vector<int>> gather_got(kRanks);
  std::vector<std::uint64_t> group_ids(kRanks, 0);

  engine.run([&](Comm& world) {
    const int w = world.rank();
    const int color = w % 2;
    Comm sub = world.split(color, /*key=*/w);
    sub_size[w] = sub.size();
    sub_rank[w] = sub.rank();
    group_ids[w] = sub.group_id();

    sub.barrier();
    bcast_got[w] = sub.bcast(sub.root(), sub.is_root() ? 100 + color : -1, 4);
    reduce_got[w] = sub.allreduce(
        world.rank(), 4, [](int a, int b) { return a + b; }, 1);
    gather_got[w] = sub.gather(sub.root(), world.rank(), 4);

    std::vector<int> parts;
    if (sub.is_root()) {
      for (int i = 0; i < sub.size(); ++i) {
        parts.push_back(sub.world_rank_of(i) * 10);
      }
    }
    scatter_got[w] = sub.scatter(sub.root(), std::move(parts),
                                 std::vector<std::size_t>(
                                     static_cast<std::size_t>(sub.size()), 4));
  });

  // color 0 = even world ranks {0,2,4,6}, color 1 = odd {1,3,5,7}; key ==
  // world rank, so members appear in world order.
  for (int w = 0; w < kRanks; ++w) {
    const int color = w % 2;
    EXPECT_EQ(sub_size[w], 4) << "world rank " << w;
    EXPECT_EQ(sub_rank[w], w / 2) << "world rank " << w;
    EXPECT_EQ(bcast_got[w], 100 + color) << "world rank " << w;
    const int expected_sum = color == 0 ? 0 + 2 + 4 + 6 : 1 + 3 + 5 + 7;
    EXPECT_EQ(reduce_got[w], expected_sum) << "world rank " << w;
    EXPECT_EQ(scatter_got[w], w * 10) << "world rank " << w;
    EXPECT_NE(group_ids[w], 0u) << "world rank " << w;
    EXPECT_EQ(group_ids[w], group_ids[color]) << "world rank " << w;
    EXPECT_NE(group_ids[0], group_ids[1]);
    if (sub_rank[w] == 0) {
      const std::vector<int> expected =
          color == 0 ? std::vector<int>{0, 2, 4, 6}
                     : std::vector<int>{1, 3, 5, 7};
      EXPECT_EQ(gather_got[w], expected) << "world rank " << w;
    } else {
      EXPECT_TRUE(gather_got[w].empty()) << "world rank " << w;
    }
  }
}

TEST(VmpiSplitTest, SplitOrdersByKeyThenParentRank) {
  constexpr int kRanks = 6;
  Engine engine(hetero_platform(kRanks), fast_options());
  std::vector<int> sub_rank(kRanks, -1);
  std::vector<int> leader_world(kRanks, -1);
  engine.run([&](Comm& world) {
    const int w = world.rank();
    // Reversed keys invert the member order; equal keys would fall back to
    // parent order (exercised by the key ties of ranks {0} alone).
    Comm sub = world.split(/*color=*/0, /*key=*/kRanks - w);
    sub_rank[w] = sub.rank();
    leader_world[w] = sub.world_rank_of(sub.root());
  });
  for (int w = 0; w < kRanks; ++w) {
    EXPECT_EQ(sub_rank[w], kRanks - 1 - w) << "world rank " << w;
    EXPECT_EQ(leader_world[w], kRanks - 1) << "world rank " << w;
  }
}

TEST(VmpiSplitTest, OverlappingGroupLifetimesStayIndependent) {
  constexpr int kRanks = 8;
  Engine engine(hetero_platform(kRanks), fast_options());
  std::vector<int> a_sum(kRanks, -1);
  std::vector<int> b_rounds(kRanks, 0);
  std::vector<int> nested_sum(kRanks, -1);
  std::vector<int> late_gathered(kRanks, 0);

  engine.run([&](Comm& world) {
    const int w = world.rank();
    if (w < 4) {
      // Group A ({0,1,2,3}) runs a 3-round reduce program...
      Comm a = world.subset({0, 1, 2, 3}, /*uid=*/1);
      for (int round = 0; round < 3; ++round) {
        a_sum[w] = a.allreduce(
            1, 4, [](int x, int y) { return x + y; }, 0);
      }
      // ...and a nested sub-sub-communicator over its first two members.
      if (w < 2) {
        Comm inner = a.subset({0, 1}, /*uid=*/7);
        nested_sum[w] = inner.allreduce(
            w + 1, 4, [](int x, int y) { return x + y; }, 0);
      }
    } else {
      // Group B ({4,5,6,7}) concurrently runs a longer, unrelated program:
      // the two lifetimes overlap with no synchronization between them.
      Comm b = world.subset({4, 5, 6, 7}, /*uid=*/2);
      for (int round = 0; round < 5; ++round) {
        b.barrier();
        ++b_rounds[w];
      }
      const auto all = b.gather(b.root(), w, 4);
      if (b.is_root()) {
        late_gathered[w] = std::accumulate(all.begin(), all.end(), 0);
      }
    }
  });

  for (int w = 0; w < 4; ++w) EXPECT_EQ(a_sum[w], 4) << "world rank " << w;
  for (int w = 0; w < 2; ++w) EXPECT_EQ(nested_sum[w], 3) << "rank " << w;
  for (int w = 4; w < 8; ++w) EXPECT_EQ(b_rounds[w], 5) << "rank " << w;
  EXPECT_EQ(late_gathered[4], 4 + 5 + 6 + 7);
}

TEST(VmpiSplitTest, SubsetRequiresMembershipAndOrder) {
  Engine engine(hetero_platform(4), fast_options());
  std::vector<std::string> errors(4);
  engine.run([&](Comm& world) {
    if (world.rank() != 0) return;
    try {
      (void)world.subset({1, 2}, 9);  // caller not a member
    } catch (const Error& e) {
      errors[0] = e.what();
    }
    try {
      (void)world.subset({2, 0}, 9);  // not strictly increasing
    } catch (const Error& e) {
      errors[1] = e.what();
    }
  });
  EXPECT_NE(errors[0].find("member of its own subset"), std::string::npos);
  EXPECT_NE(errors[1].find("strictly increasing"), std::string::npos);
}

/// The scheduler-shaped stress case: many disjoint gangs, each running a
/// collective-heavy program over a shared large engine.
RunReport run_group_stress(std::size_t n, ExecMode mode) {
  constexpr std::size_t kGroupSize = 8;
  Engine engine(hetero_platform(n), fast_options(mode));
  return engine.run([&](Comm& world) {
    const int w = world.rank();
    const int color = w / static_cast<int>(kGroupSize);
    Comm sub = world.split(color, /*key=*/w);
    for (int round = 0; round < 4; ++round) {
      sub.barrier();
      const int sum = sub.allreduce(
          w + round, 8, [](int a, int b) { return a + b; }, 1);
      const auto all = sub.gather(sub.root(), sum + w, 8);
      std::vector<int> parts;
      if (sub.is_root()) {
        EXPECT_EQ(static_cast<int>(all.size()), sub.size());
        for (int i = 0; i < sub.size(); ++i) parts.push_back(i);
      }
      const int mine = sub.scatter(
          sub.root(), std::move(parts),
          std::vector<std::size_t>(static_cast<std::size_t>(sub.size()), 8));
      EXPECT_EQ(mine, sub.rank());
    }
  });
}

TEST(VmpiSplitStressTest, ManyGroupsMatchAcrossExecutorModes) {
  const std::size_t n = stress_ranks();
  const RunReport bounded = run_group_stress(n, ExecMode::kBoundedExecutor);
  const RunReport threads = run_group_stress(n, ExecMode::kThreadPerRank);
  expect_reports_equal(bounded, threads);
  const RunReport again = run_group_stress(n, ExecMode::kBoundedExecutor);
  expect_reports_equal(bounded, again);
}

}  // namespace
}  // namespace hprs::vmpi
