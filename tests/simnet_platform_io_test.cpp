#include "simnet/platform_io.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "common/error.hpp"

namespace hprs::simnet {
namespace {

void expect_same_platform(const Platform& a, const Platform& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.name(), b.name());
  EXPECT_EQ(a.switched_fabric(), b.switched_fabric());
  ASSERT_EQ(a.segment_count(), b.segment_count());
  for (std::size_t s = 0; s < a.segment_count(); ++s) {
    for (std::size_t t = 0; t < a.segment_count(); ++t) {
      EXPECT_DOUBLE_EQ(a.segment_capacity_ms_per_mbit(s, t),
                       b.segment_capacity_ms_per_mbit(s, t));
    }
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.processor(i).name, b.processor(i).name);
    EXPECT_DOUBLE_EQ(a.cycle_time(i), b.cycle_time(i));
    EXPECT_EQ(a.processor(i).memory_mb, b.processor(i).memory_mb);
    EXPECT_EQ(a.processor(i).cache_kb, b.processor(i).cache_kb);
    EXPECT_EQ(a.segment_of(i), b.segment_of(i));
    EXPECT_EQ(a.processor(i).architecture, b.processor(i).architecture);
    EXPECT_EQ(a.accelerated(i), b.accelerated(i));
    EXPECT_DOUBLE_EQ(a.processor(i).stage_latency_ms,
                     b.processor(i).stage_latency_ms);
    EXPECT_DOUBLE_EQ(a.processor(i).stage_ms_per_mbit,
                     b.processor(i).stage_ms_per_mbit);
  }
}

TEST(PlatformIoTest, PaperPlatformsRoundTripThroughText) {
  for (const auto& platform :
       {fully_heterogeneous(), fully_homogeneous(), partially_heterogeneous(),
        partially_homogeneous(), thunderhead(8), accelerated_now(4, 2)}) {
    const Platform back = parse_platform(format_platform(platform));
    expect_same_platform(platform, back);
  }
}

TEST(PlatformIoTest, ParsesTheAcceleratorGroup) {
  const Platform p = parse_platform(
      "platform accel-mini\n"
      "segments 1\n"
      "capacity 26.64\n"
      "processor c1 0.0131 2048 1024 0 Linux -- AMD Athlon\n"
      "processor a1 0.0003 2048 1024 0 accel 2.0 0.06 Linux + accelerator\n");
  ASSERT_EQ(p.size(), 2u);
  EXPECT_FALSE(p.accelerated(0));
  EXPECT_TRUE(p.accelerated(1));
  EXPECT_TRUE(p.has_accelerated());
  EXPECT_DOUBLE_EQ(p.processor(1).stage_latency_ms, 2.0);
  EXPECT_DOUBLE_EQ(p.processor(1).stage_ms_per_mbit, 0.06);
  EXPECT_EQ(p.processor(1).architecture, "Linux + accelerator");
  // 1 MB onto the device: 8 megabits * 0.06 ms/megabit = 0.48 ms.
  EXPECT_NEAR(p.stage_seconds(1, 1000000), 0.48e-3, 1e-12);
  EXPECT_DOUBLE_EQ(p.stage_seconds(0, 1000000), 0.0);
}

TEST(PlatformIoTest, RejectsAMalformedAcceleratorGroup) {
  EXPECT_THROW(parse_platform("platform x\n"
                              "segments 1\n"
                              "capacity 1.0\n"
                              "processor a1 0.01 1024 512 0 accel 2.0\n"),
               Error);
}

TEST(PlatformIoTest, RoundTripsThroughAFile) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("hprs_pio_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "net.platform").string();
  save_platform(fully_heterogeneous(), path);
  expect_same_platform(fully_heterogeneous(), load_platform(path));
  std::filesystem::remove_all(dir);
}

TEST(PlatformIoTest, ParsesHandWrittenDescription) {
  const Platform p = parse_platform(R"(
# a two-segment toy network
platform toy
fabric switched
segments 2
capacity 10 50
         50 12
processor alpha 0.004 2048 1024 0 Linux -- test box
processor beta  0.008 1024 512  1
)");
  EXPECT_EQ(p.name(), "toy");
  EXPECT_TRUE(p.switched_fabric());
  EXPECT_EQ(p.size(), 2u);
  EXPECT_DOUBLE_EQ(p.cycle_time(0), 0.004);
  EXPECT_DOUBLE_EQ(p.link_ms_per_mbit(0, 1), 50.0);
  EXPECT_EQ(p.processor(0).architecture, "Linux -- test box");
  EXPECT_EQ(p.processor(1).architecture, "unspecified");
}

TEST(PlatformIoTest, CapacityMayFlowAcrossLines) {
  const Platform p = parse_platform(
      "platform flow\nsegments 2\ncapacity\n1 2\n2 3\n"
      "processor x 0.01 64 64 0\n");
  EXPECT_DOUBLE_EQ(p.segment_capacity_ms_per_mbit(1, 1), 3.0);
}

TEST(PlatformIoTest, RejectsMalformedInput) {
  // Missing platform name.
  EXPECT_THROW((void)parse_platform("segments 1\ncapacity 1\n"
                                    "processor x 0.01 64 64 0\n"),
               Error);
  // Unknown directive.
  EXPECT_THROW((void)parse_platform("platform x\nbogus 1\n"), Error);
  // Capacity before segments.
  EXPECT_THROW((void)parse_platform("platform x\ncapacity 1\n"), Error);
  // Incomplete capacity matrix.
  EXPECT_THROW((void)parse_platform("platform x\nsegments 2\ncapacity 1 2\n"),
               Error);
  // Bad fabric.
  EXPECT_THROW((void)parse_platform("platform x\nfabric quantum\n"), Error);
  // No processors.
  EXPECT_THROW((void)parse_platform("platform x\nsegments 1\ncapacity 1\n"),
               Error);
  // Asymmetric capacities (rejected by Platform's own validation).
  EXPECT_THROW((void)parse_platform("platform x\nsegments 2\n"
                                    "capacity 1 2\n3 1\n"
                                    "processor y 0.01 64 64 0\n"),
               Error);
}

TEST(PlatformIoTest, MissingFileThrows) {
  EXPECT_THROW((void)load_platform("/nonexistent/net.platform"), Error);
}

}  // namespace
}  // namespace hprs::simnet
