// The fault-tolerance contract of core/ft.hpp, across all four algorithms:
//
//  * outputs first -- a fault-tolerant run's targets/labels equal the
//    fault-free collective outputs bit for bit, with an empty plan and
//    under fail-stop worker crashes (recovery must never change the
//    science);
//  * determinism second -- a fixed fault plan yields bit-identical
//    RunReports (fault log and recovery decomposition included) across
//    repeated runs and across both host execution modes;
//  * guardrails third -- a mortal root and halo-exchange MORPH are
//    rejected up front.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/runner.hpp"
#include "simnet/platform.hpp"
#include "test_scenes.hpp"
#include "vmpi/engine.hpp"

namespace hprs::core {
namespace {

hsi::HsiCube test_cube() {
  auto cube = hprs::testing::striped_cube(48, 16, 24, 4);
  hprs::testing::plant_targets(cube, 4);
  return cube;
}

RunnerConfig base_config(Algorithm alg) {
  RunnerConfig cfg;
  cfg.algorithm = alg;
  cfg.policy = PartitionPolicy::kHeterogeneous;
  cfg.targets = 4;
  cfg.classes = 4;
  cfg.morph_iterations = 2;
  cfg.kernel_radius = 1;
  cfg.replication = 1;
  return cfg;
}

/// Two worker crashes bracketing the middle of the fault-free run.
vmpi::Options crash_options(double fault_free_s) {
  vmpi::Options options;
  options.fault_plan.crashes.push_back({3, 0.25 * fault_free_s});
  options.fault_plan.crashes.push_back({11, 0.50 * fault_free_s});
  return options;
}

void expect_same_outputs(const RunnerOutput& a, const RunnerOutput& b,
                         const char* label) {
  ASSERT_EQ(a.targets.size(), b.targets.size()) << label;
  for (std::size_t i = 0; i < a.targets.size(); ++i) {
    EXPECT_EQ(a.targets[i].row, b.targets[i].row) << label << " target " << i;
    EXPECT_EQ(a.targets[i].col, b.targets[i].col) << label << " target " << i;
  }
  EXPECT_EQ(a.labels, b.labels) << label;
  EXPECT_EQ(a.label_count, b.label_count) << label;
}

void expect_same_reports(const vmpi::RunReport& a, const vmpi::RunReport& b,
                         const char* label) {
  EXPECT_EQ(a.total_time, b.total_time) << label;
  ASSERT_EQ(a.ranks.size(), b.ranks.size()) << label;
  for (std::size_t r = 0; r < a.ranks.size(); ++r) {
    EXPECT_EQ(a.ranks[r].clock, b.ranks[r].clock) << label << " rank " << r;
    EXPECT_EQ(a.ranks[r].flops, b.ranks[r].flops) << label << " rank " << r;
    EXPECT_EQ(a.ranks[r].bytes_sent, b.ranks[r].bytes_sent)
        << label << " rank " << r;
    EXPECT_EQ(a.ranks[r].bytes_received, b.ranks[r].bytes_received)
        << label << " rank " << r;
    if (::testing::Test::HasFailure()) break;
  }
  ASSERT_EQ(a.fault_events.size(), b.fault_events.size()) << label;
  for (std::size_t i = 0; i < a.fault_events.size(); ++i) {
    EXPECT_EQ(a.fault_events[i].time_s, b.fault_events[i].time_s)
        << label << " event " << i;
    EXPECT_EQ(a.fault_events[i].rank, b.fault_events[i].rank)
        << label << " event " << i;
    if (::testing::Test::HasFailure()) break;
  }
  EXPECT_EQ(a.recovery.detection_s, b.recovery.detection_s) << label;
  EXPECT_EQ(a.recovery.redistribution_s, b.recovery.redistribution_s) << label;
  EXPECT_EQ(a.recovery.recomputed_s, b.recovery.recomputed_s) << label;
  EXPECT_EQ(a.recovery.recomputed_flops, b.recovery.recomputed_flops) << label;
}

class FaultRecoverySweep : public ::testing::TestWithParam<Algorithm> {};

TEST_P(FaultRecoverySweep, FaultTolerantOutputsMatchFaultFree) {
  const auto cube = test_cube();
  const auto platform = simnet::fully_heterogeneous();
  auto cfg = base_config(GetParam());

  const auto reference = run_algorithm(platform, cube, cfg);

  cfg.fault_tolerant = true;
  // Empty plan: the protocol itself must not change the outputs.
  const auto ft_clean = run_algorithm(platform, cube, cfg);
  expect_same_outputs(reference, ft_clean, "ft-empty-plan");
  EXPECT_EQ(ft_clean.report.recovery.total_overhead_s(), 0.0);
  EXPECT_TRUE(ft_clean.report.fault_events.empty());

  // Two mid-run worker crashes: outputs still match, overhead is recorded.
  const auto options = crash_options(reference.report.total_time);
  const auto ft_crash = run_algorithm(platform, cube, cfg, options);
  expect_same_outputs(reference, ft_crash, "ft-crashes");
  EXPECT_EQ(ft_crash.report.recovery.crashes, 2);
  EXPECT_GE(ft_crash.report.recovery.detections, 2);
  EXPECT_GT(ft_crash.report.recovery.detection_s, 0.0);
  EXPECT_GT(ft_crash.report.recovery.recomputed_flops, 0u);
  EXPECT_FALSE(ft_crash.report.fault_events.empty());
}

TEST_P(FaultRecoverySweep, FaultedReportsBitIdenticalAcrossRunsAndModes) {
  const auto cube = test_cube();
  const auto platform = simnet::fully_heterogeneous();
  auto cfg = base_config(GetParam());
  const auto reference = run_algorithm(platform, cube, cfg);

  cfg.fault_tolerant = true;
  const auto options = crash_options(reference.report.total_time);
  const auto first = run_algorithm(platform, cube, cfg, options);
  const auto repeat = run_algorithm(platform, cube, cfg, options);
  expect_same_reports(first.report, repeat.report, "repeat");

  auto tpr = options;
  tpr.exec_mode = vmpi::ExecMode::kThreadPerRank;
  const auto threads = run_algorithm(platform, cube, cfg, tpr);
  expect_same_outputs(first, threads, "modes-outputs");
  expect_same_reports(first.report, threads.report, "executor-vs-threads");
}

INSTANTIATE_TEST_SUITE_P(Algorithms, FaultRecoverySweep,
                         ::testing::Values(Algorithm::kAtdca,
                                           Algorithm::kUfcls, Algorithm::kPct,
                                           Algorithm::kMorph),
                         [](const auto& param_info) {
                           return to_string(param_info.param);
                         });

TEST(FaultRecoveryGuards, MortalRootIsRejected) {
  const auto cube = test_cube();
  auto cfg = base_config(Algorithm::kAtdca);
  cfg.fault_tolerant = true;
  vmpi::Options options;
  options.fault_plan.crashes.push_back({0, 0.01});  // the root
  EXPECT_THROW(
      (void)run_algorithm(simnet::fully_heterogeneous(), cube, cfg, options),
      Error);
}

TEST(FaultRecoveryGuards, MorphFaultToleranceRequiresOverlapBorders) {
  const auto cube = test_cube();
  auto cfg = base_config(Algorithm::kMorph);
  cfg.fault_tolerant = true;
  cfg.morph_overlap_borders = false;
  EXPECT_THROW((void)run_algorithm(simnet::fully_heterogeneous(), cube, cfg),
               Error);
}

}  // namespace
}  // namespace hprs::core
