#include "linalg/eigen.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/vec.hpp"

namespace hprs::linalg {
namespace {

Matrix random_symmetric(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      a(i, j) = rng.uniform(-2, 2);
      a(j, i) = a(i, j);
    }
  }
  return a;
}

TEST(JacobiEigenTest, DiagonalMatrixIsItsOwnDecomposition) {
  Matrix a(3, 3);
  a(0, 0) = 1.0;
  a(1, 1) = 5.0;
  a(2, 2) = 3.0;
  const auto eig = jacobi_eigen(a);
  ASSERT_EQ(eig.values.size(), 3u);
  EXPECT_NEAR(eig.values[0], 5.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-12);
  EXPECT_NEAR(eig.values[2], 1.0, 1e-12);
}

TEST(JacobiEigenTest, Known2x2Eigenvalues) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  const Matrix a(2, 2, {2, 1, 1, 2});
  const auto eig = jacobi_eigen(a);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-12);
  // Leading eigenvector is (1,1)/sqrt(2) up to sign.
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(eig.vectors(0, 0)), inv_sqrt2, 1e-10);
  EXPECT_NEAR(std::abs(eig.vectors(0, 1)), inv_sqrt2, 1e-10);
}

TEST(JacobiEigenTest, RejectsNonSquare) {
  EXPECT_THROW((void)jacobi_eigen(Matrix(2, 3)), Error);
}

TEST(JacobiEigenTest, ValuesAreSortedDescending) {
  const Matrix a = random_symmetric(12, 99);
  const auto eig = jacobi_eigen(a);
  for (std::size_t i = 1; i < eig.values.size(); ++i) {
    EXPECT_GE(eig.values[i - 1], eig.values[i]);
  }
}

TEST(JacobiEigenTest, TraceEqualsEigenvalueSum) {
  const Matrix a = random_symmetric(9, 17);
  const auto eig = jacobi_eigen(a);
  double trace = 0.0;
  for (std::size_t i = 0; i < 9; ++i) trace += a(i, i);
  double sum = 0.0;
  for (double v : eig.values) sum += v;
  EXPECT_NEAR(trace, sum, 1e-10);
}

class EigenSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenSizeSweep, EigenvectorsAreOrthonormal) {
  const std::size_t n = GetParam();
  const auto eig = jacobi_eigen(random_symmetric(n, n * 5 + 3));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double d =
          dot<double, double>(eig.vectors.row(i), eig.vectors.row(j));
      EXPECT_NEAR(d, i == j ? 1.0 : 0.0, 1e-9) << "i=" << i << " j=" << j;
    }
  }
}

TEST_P(EigenSizeSweep, SatisfiesEigenEquation) {
  const std::size_t n = GetParam();
  const Matrix a = random_symmetric(n, n * 11 + 7);
  const auto eig = jacobi_eigen(a);
  for (std::size_t k = 0; k < n; ++k) {
    const auto av = a.multiply(eig.vectors.row(k));
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(av[i], eig.values[k] * eig.vectors(k, i), 1e-8)
          << "pair " << k << " component " << i;
    }
  }
}

TEST_P(EigenSizeSweep, ReconstructsOriginalMatrix) {
  const std::size_t n = GetParam();
  const Matrix a = random_symmetric(n, n * 13 + 1);
  const auto eig = jacobi_eigen(a);
  // A = sum_k lambda_k v_k v_k^T
  Matrix recon(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    const auto v = eig.vectors.row(k);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        recon(i, j) += eig.values[k] * v[i] * v[j];
      }
    }
  }
  EXPECT_LE(recon.max_abs_diff(a), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenSizeSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 32));

TEST(JacobiEigenTest, HandlesAvirisSizedCovariance) {
  // The PCT path decomposes 224 x 224 covariance matrices; verify the
  // solver converges and stays orthonormal at that size.
  const std::size_t n = 224;
  Xoshiro256 rng(2006);
  Matrix b(64, n);  // rank-64 covariance plus a ridge, like real image stats
  for (auto& v : b.data()) v = rng.uniform(-1, 1);
  Matrix cov = b.gram();
  for (std::size_t i = 0; i < n; ++i) cov(i, i) += 1e-3;
  const auto eig = jacobi_eigen(cov);
  EXPECT_GT(eig.values.front(), eig.values.back());
  EXPECT_GT(eig.values.back(), 0.0);
  EXPECT_GT(eig.sweeps, 0);
  double sum = 0.0;
  for (double v : eig.values) sum += v;
  double trace = 0.0;
  for (std::size_t i = 0; i < n; ++i) trace += cov(i, i);
  EXPECT_NEAR(sum, trace, 1e-6 * trace);
}

}  // namespace
}  // namespace hprs::linalg
