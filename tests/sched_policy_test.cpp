// Policy-layer determinism: stable job-id tie-breaks in every ordering,
// heterogeneity-aware placement, reservation arithmetic, conservative
// backfill, and the memory-bound admission error.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hsi/cube.hpp"
#include "sched/cost_model.hpp"
#include "sched/job.hpp"
#include "sched/policy.hpp"
#include "simnet/platform.hpp"

namespace hprs::sched {
namespace {

/// Heterogeneous pool: rank i has cycle time 1 + i ms/Mflop (rank 0 the
/// fastest) and `memory_mb` megabytes each.
simnet::Platform pool_platform(std::size_t n, std::size_t memory_mb = 1024) {
  std::vector<simnet::ProcessorSpec> procs;
  for (std::size_t i = 0; i < n; ++i) {
    procs.push_back(simnet::ProcessorSpec{
        "p" + std::to_string(i), "t",
        0.001 * static_cast<double>(1 + i), memory_mb, 512, 0});
  }
  return simnet::Platform("pool", std::move(procs), {{10.0}});
}

TEST(SchedPolicyTest, EqualKeysBreakTiesOnJobId) {
  // Same arrival everywhere and same estimate everywhere, submitted in a
  // shuffled order: every policy must settle on ascending job id.
  std::vector<PendingJob> ready{
      {/*id=*/7, /*index=*/0, /*arrival=*/1.0, /*est=*/5.0, /*width=*/1},
      {/*id=*/3, /*index=*/1, /*arrival=*/1.0, /*est=*/5.0, /*width=*/1},
      {/*id=*/5, /*index=*/2, /*arrival=*/1.0, /*est=*/5.0, /*width=*/1},
  };
  for (Policy policy :
       {Policy::kFifo, Policy::kSjf, Policy::kHeteroBestFit}) {
    const auto order = policy_order(policy, ready);
    ASSERT_EQ(order.size(), 3u) << to_string(policy);
    EXPECT_EQ(ready[order[0]].id, 3u) << to_string(policy);
    EXPECT_EQ(ready[order[1]].id, 5u) << to_string(policy);
    EXPECT_EQ(ready[order[2]].id, 7u) << to_string(policy);
  }
}

TEST(SchedPolicyTest, SjfOrdersByEstimateThenId) {
  std::vector<PendingJob> ready{
      {/*id=*/1, 0, 0.0, /*est=*/9.0, 1},
      {/*id=*/2, 1, 0.0, /*est=*/2.0, 1},
      {/*id=*/3, 2, 5.0, /*est=*/2.0, 1},  // later arrival, equal estimate
  };
  const auto order = policy_order(Policy::kSjf, ready);
  EXPECT_EQ(ready[order[0]].id, 2u);
  EXPECT_EQ(ready[order[1]].id, 3u);  // equal estimate: id 2 before id 3
  EXPECT_EQ(ready[order[2]].id, 1u);
}

TEST(SchedPolicyTest, HeteroPicksFastestFreeRanks) {
  const simnet::Platform platform = pool_platform(6);
  // Free ranks 5,1,3 (ascending input): hetero takes the two fastest (1
  // then 3), returned ascending for Comm::subset.
  const auto members =
      pick_members(Policy::kHeteroBestFit, platform, {1, 3, 5}, 2);
  EXPECT_EQ(members, (std::vector<int>{1, 3}));
  // FIFO/SJF take the lowest ids regardless of speed.
  EXPECT_EQ(pick_members(Policy::kFifo, platform, {1, 3, 5}, 2),
            (std::vector<int>{1, 3}));
  EXPECT_EQ(pick_members(Policy::kHeteroBestFit, platform, {2, 4, 5}, 1),
            (std::vector<int>{2}));
}

TEST(SchedPolicyTest, ReservationTimeDrainsCompletionsInEstOrder) {
  std::vector<RunningJob> running{
      {/*id=*/1, 0, /*est_finish=*/20.0, {1, 2}, /*batch_key=*/0, {}},
      {/*id=*/2, 1, /*est_finish=*/10.0, {3}, /*batch_key=*/0, {}},
  };
  // 1 free now; width 2 satisfied when job 2 (est 10) drains.
  EXPECT_EQ(reservation_time(running, 1, 2, 5.0), 10.0);
  // width 4 needs both completions.
  EXPECT_EQ(reservation_time(running, 1, 4, 5.0), 20.0);
  // already satisfiable: now.
  EXPECT_EQ(reservation_time(running, 3, 2, 5.0), 5.0);
}

TEST(SchedPolicyTest, ConservativeBackfillRespectsHeadReservation) {
  const simnet::Platform platform = pool_platform(6);
  // Head (id 1) wants 4 ranks; only {4, 5} are free; the running job's
  // estimated finish sets the head's reservation at t=10.
  std::vector<PendingJob> ready{
      {/*id=*/1, 0, /*arrival=*/0.0, /*est=*/3.0, /*width=*/4},
      {/*id=*/2, 1, /*arrival=*/1.0, /*est=*/4.0, /*width=*/2},
  };
  std::vector<RunningJob> running{{/*id=*/9, 2, /*est_finish=*/10.0,
                                   {0, 1, 2, 3}, /*batch_key=*/0, {}}};
  // now=5: 5 + 4 <= 10, so job 2 backfills onto the free ranks.
  auto sel = try_select(Policy::kHeteroBestFit, platform, ready, {4, 5},
                        running, /*now=*/5.0);
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(ready[sel->ready_pos].id, 2u);
  EXPECT_EQ(sel->members, (std::vector<int>{4, 5}));
  // now=7: 7 + 4 > 10 would delay the head's start -- no backfill.
  EXPECT_FALSE(try_select(Policy::kHeteroBestFit, platform, ready, {4, 5},
                          running, /*now=*/7.0)
                   .has_value());
  // FIFO never backfills: the head blocks the line at any time.
  EXPECT_FALSE(try_select(Policy::kFifo, platform, ready, {4, 5}, running,
                          /*now=*/5.0)
                   .has_value());
}

TEST(SchedPolicyTest, HeadDispatchesAsSoonAsItFits) {
  const simnet::Platform platform = pool_platform(6);
  std::vector<PendingJob> ready{
      {/*id=*/1, 0, 0.0, 3.0, /*width=*/2},
      {/*id=*/2, 1, 1.0, 1.0, /*width=*/1},
  };
  auto sel = try_select(Policy::kHeteroBestFit, platform, ready, {2, 3, 4},
                        {}, /*now=*/5.0);
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(ready[sel->ready_pos].id, 1u);  // head first, never skipped
  EXPECT_EQ(sel->members, (std::vector<int>{2, 3}));  // fastest free ranks
}

TEST(SchedAdmissionTest, RejectsOversizedJobWithNamedError) {
  // 4 tiny-memory workers: a 64x64x32 float cube (512 KiB) cannot fit in
  // 2 ranks x 1 MB x 0.1 fraction.
  const simnet::Platform platform = pool_platform(5, /*memory_mb=*/1);
  const hsi::HsiCube scene(64, 64, 32);
  JobSpec spec;
  spec.id = 42;
  spec.ranks = 2;
  spec.memory_fraction = 0.1;
  try {
    check_admission(platform, {1, 2, 3, 4}, spec, scene);
    FAIL() << "expected AdmissionError";
  } catch (const AdmissionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("job 42"), std::string::npos) << what;
    EXPECT_NE(what.find("does not fit in memory"), std::string::npos) << what;
  }
}

TEST(SchedAdmissionTest, RejectsGangWiderThanPoolOrRows) {
  const simnet::Platform platform = pool_platform(5);
  const hsi::HsiCube scene(8, 8, 4);
  JobSpec wide;
  wide.id = 1;
  wide.ranks = 9;
  EXPECT_THROW(check_admission(platform, {1, 2, 3, 4}, wide, scene),
               AdmissionError);
  JobSpec tall;
  tall.id = 2;
  tall.ranks = 4;
  const hsi::HsiCube thin(3, 8, 4);  // fewer rows than ranks
  EXPECT_THROW(check_admission(platform, {1, 2, 3, 4}, tall, thin),
               AdmissionError);
  JobSpec fits;
  fits.id = 3;
  fits.ranks = 4;
  EXPECT_NO_THROW(check_admission(platform, {1, 2, 3, 4}, fits, scene));
}

TEST(SchedCostModelTest, EstimateScalesWithWorkAndMembers) {
  const simnet::Platform platform = pool_platform(6);
  const hsi::HsiCube scene(32, 16, 24);
  JobSpec spec;
  spec.id = 1;
  spec.algorithm = JobAlgorithm::kAtdca;
  spec.ranks = 2;
  const JobEstimate two = estimate_job(platform, {1, 2}, spec, scene);
  const JobEstimate four = estimate_job(platform, {1, 2, 3, 4}, spec, scene);
  EXPECT_GT(two.seconds, 0.0);
  // More members = more aggregate speed = smaller compute bound.
  EXPECT_LT(four.seconds, two.seconds);
  // Faster members beat slower ones at equal width.
  const JobEstimate slow = estimate_job(platform, {4, 5}, spec, scene);
  EXPECT_LT(two.seconds, slow.seconds);
  // Replication scales the estimate.
  JobSpec heavy = spec;
  heavy.replication = 10;
  EXPECT_GT(estimate_job(platform, {1, 2}, heavy, scene).seconds,
            5.0 * two.seconds);
}

}  // namespace
}  // namespace hprs::sched
