// The run-summary pipeline (obs/run_summary.hpp + obs/report_diff.hpp):
//
//  * serialization -- RunSummary::to_json is a stable, sorted, flat JSON
//    object whose tokens round-trip exactly through parse_flat_json;
//  * population -- add_run_report and add_metrics emit the documented keys
//    (recovery block only when non-trivial, host metrics only on request);
//  * the gate -- diff_summaries accepts identical documents, rejects any
//    stable-token change and any missing/extra key, and compares
//    "host"-named keys by threshold instead of identity.
#include "obs/report_diff.hpp"
#include "obs/run_summary.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "obs/metrics.hpp"
#include "vmpi/stats.hpp"

namespace hprs::obs {
namespace {

using Entries = std::map<std::string, std::string>;

TEST(RunSummaryTest, ToJsonIsSortedStableAndEscaped) {
  RunSummary s;
  s.set_number("b.pi", 3.5);
  s.set_count("a.count", 42);
  s.set_bool("c.flag", true);
  s.set_string("d.name", "say \"hi\"\n");
  EXPECT_EQ(s.to_json(),
            "{\n"
            "  \"a.count\": 42,\n"
            "  \"b.pi\": 3.5,\n"
            "  \"c.flag\": true,\n"
            "  \"d.name\": \"say \\\"hi\\\"\\n\"\n"
            "}\n");
}

TEST(RunSummaryTest, DoublesRoundTripThroughTheTokenFormat) {
  RunSummary s;
  const double awkward = 0.1 + 0.2;  // not representable as a short decimal
  s.set_number("x", awkward);
  Entries parsed;
  std::string error;
  ASSERT_TRUE(parse_flat_json(s.to_json(), parsed, error)) << error;
  EXPECT_EQ(std::stod(parsed.at("x")), awkward);  // %.17g round-trips
}

TEST(ParseFlatJsonTest, ParsesItsOwnWriterAndRejectsMalformedInput) {
  RunSummary s;
  s.set_count("k1", 1);
  s.set_string("k2", "v");
  Entries parsed;
  std::string error;
  ASSERT_TRUE(parse_flat_json(s.to_json(), parsed, error)) << error;
  EXPECT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed.at("k1"), "1");
  EXPECT_EQ(parsed.at("k2"), "\"v\"");

  for (const char* bad : {"", "[1, 2]", "{\"a\" 1}", "{\"a\": }",
                          "{\"a\": 1, \"a\": 2}", "{\"a\": 1", "not json"}) {
    Entries out;
    std::string err;
    EXPECT_FALSE(parse_flat_json(bad, out, err)) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

vmpi::RunReport sample_report() {
  vmpi::RunReport report;
  report.total_time = 2.0;
  report.ranks.resize(2);
  report.ranks[0].comm = 0.5;
  report.ranks[0].compute_seq = 0.25;
  report.ranks[0].compute_par = 0.75;
  report.ranks[1].compute_par = 1.5;
  report.ranks[0].flops = 100;
  report.ranks[1].flops = 300;
  report.ranks[0].bytes_sent = 64;
  report.ranks[1].bytes_received = 64;
  return report;
}

TEST(AddRunReportTest, EmitsTheDeterministicCore) {
  RunSummary s;
  add_run_report(s, "run", sample_report());
  const auto& e = s.entries();
  EXPECT_EQ(e.at("run.total_s"), "2");
  EXPECT_EQ(e.at("run.com_s"), "0.5");
  EXPECT_EQ(e.at("run.seq_s"), "0.25");
  EXPECT_EQ(e.at("run.par_s"), "1.25");
  EXPECT_EQ(e.at("run.flops"), "400");
  EXPECT_EQ(e.at("run.bytes_moved"), "64");  // counts each transfer once
  EXPECT_EQ(e.at("run.ranks"), "2");
  EXPECT_EQ(e.at("run.fault_events"), "0");
  // Fault-free: no recovery block.
  EXPECT_EQ(e.count("run.recovery.crashes"), 0u);
}

TEST(AddRunReportTest, RecoveryBlockAppearsOnlyWhenNonTrivial) {
  auto report = sample_report();
  report.recovery.crashes = 1;
  report.recovery.detections = 2;
  report.recovery.detection_s = 0.125;
  report.recovery.recomputed_flops = 77;
  RunSummary s;
  add_run_report(s, "run", report);
  const auto& e = s.entries();
  EXPECT_EQ(e.at("run.recovery.crashes"), "1");
  EXPECT_EQ(e.at("run.recovery.detections"), "2");
  EXPECT_EQ(e.at("run.recovery.detection_s"), "0.125");
  EXPECT_EQ(e.at("run.recovery.recomputed_flops"), "77");
}

TEST(AddMetricsTest, StableByDefaultHostOnRequest) {
  const ScopedMetrics scoped;
  auto& m = Metrics::instance();
  m.add("stable.count", 9);
  m.gauge_max("stable.gauge", 4.0);
  m.add("host.count", 3, Domain::kHost);
  m.gauge_max("host.gauge", 2.0, Domain::kHost);
  m.time_add("section", 1.5);
  const auto snap = m.snapshot();

  RunSummary stable_only;
  add_metrics(stable_only, "p", snap);
  EXPECT_EQ(stable_only.entries().size(), 2u);
  EXPECT_EQ(stable_only.entries().at("p.metrics.stable.count"), "9");
  EXPECT_EQ(stable_only.entries().at("p.metrics.stable.gauge"), "4");

  RunSummary with_host;
  add_metrics(with_host, "p", snap, /*include_host=*/true);
  const auto& e = with_host.entries();
  EXPECT_EQ(e.size(), 5u);
  EXPECT_EQ(e.at("p.metrics.host.count.host_count"), "3");
  EXPECT_EQ(e.at("p.metrics.host.gauge.host_level"), "2");
  EXPECT_EQ(e.at("p.metrics.section.host_s"), "1.5");
}

// --- The gate -------------------------------------------------------------

TEST(ReportDiffTest, IdenticalSummariesPass) {
  const Entries doc = {{"a", "1"}, {"b", "2.5"}, {"c.host_s", "10"}};
  const auto result = diff_summaries(doc, doc);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.keys_compared, 3u);
}

TEST(ReportDiffTest, StableTokensRequireExactIdentity) {
  const Entries golden = {{"a", "1"}};
  // Numerically equal, textually different: still a failure -- stable
  // comparison is on raw tokens, never parsed values.
  const auto result = diff_summaries(golden, {{"a", "1.0"}});
  ASSERT_EQ(result.mismatches.size(), 1u);
  EXPECT_EQ(result.mismatches[0].key, "a");
}

TEST(ReportDiffTest, MissingAndExtraKeysAlwaysFail) {
  const Entries golden = {{"a", "1"}, {"b", "2"}};
  const Entries actual = {{"b", "2"}, {"c", "3"}};
  const auto result = diff_summaries(golden, actual);
  ASSERT_EQ(result.mismatches.size(), 2u);
  EXPECT_EQ(result.mismatches[0].key, "a");
  EXPECT_EQ(result.mismatches[0].actual, "<missing>");
  EXPECT_EQ(result.mismatches[1].key, "c");
  EXPECT_EQ(result.mismatches[1].golden, "<missing>");
}

TEST(ReportDiffTest, HostKeysCompareByThreshold) {
  const Entries golden = {{"bench.host_s", "10"}};
  // Within the default 10x relative window: passes despite the different
  // token.
  EXPECT_TRUE(diff_summaries(golden, {{"bench.host_s", "99"}}).ok());
  EXPECT_TRUE(diff_summaries(golden, {{"bench.host_s", "1.1"}}).ok());
  // An order-of-magnitude-plus collapse fails both tolerances.
  EXPECT_FALSE(diff_summaries(golden, {{"bench.host_s", "200"}}).ok());

  // Small absolute differences pass even when the ratio is huge.
  const Entries near_zero = {{"startup.host_s", "0.001"}};
  EXPECT_TRUE(diff_summaries(near_zero, {{"startup.host_s", "4.9"}}).ok());
  EXPECT_FALSE(diff_summaries(near_zero, {{"startup.host_s", "60"}}).ok());

  // Tolerances are adjustable.
  DiffOptions tight;
  tight.host_rel_tol = 1.5;
  tight.host_abs_tol = 0.0;
  EXPECT_FALSE(diff_summaries(golden, {{"bench.host_s", "99"}}, tight).ok());
  EXPECT_TRUE(diff_summaries(golden, {{"bench.host_s", "12"}}, tight).ok());
}

TEST(ReportDiffTest, HostKeyDetectionIsSubstringBased) {
  EXPECT_TRUE(is_host_time_key("bench.metrics.vmpi.host.wakeups.host_count"));
  EXPECT_TRUE(is_host_time_key("table8.ATDCA.p64.host_s"));
  EXPECT_FALSE(is_host_time_key("table8.ATDCA.p64.virtual_s"));
  EXPECT_FALSE(is_host_time_key("run.total_s"));
}

}  // namespace
}  // namespace hprs::obs
