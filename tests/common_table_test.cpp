#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace hprs {
namespace {

TEST(TextTableTest, RendersHeaderAndRows) {
  TextTable t({"Algorithm", "Time"});
  t.add_row({"ATDCA", "84"});
  t.add_row({"MORPH", "171"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Algorithm"), std::string::npos);
  EXPECT_NE(s.find("ATDCA"), std::string::npos);
  EXPECT_NE(s.find("171"), std::string::npos);
}

TEST(TextTableTest, ColumnsAreAligned) {
  TextTable t({"A", "B"});
  t.add_row({"short", "x"});
  t.add_row({"a-much-longer-cell", "y"});
  const std::string s = t.to_string();
  // Every rendered line must have equal length.
  std::istringstream is(s);
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TextTableTest, RejectsMismatchedRowArity) {
  TextTable t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), Error);
}

TEST(TextTableTest, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), Error);
}

TEST(TextTableTest, NumFormatsFixedPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(3.14159, 4), "3.1416");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
  EXPECT_EQ(TextTable::num(static_cast<long long>(42)), "42");
}

TEST(TextTableTest, CsvHasOneLinePerRowPlusHeader) {
  TextTable t({"A", "B"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  const std::string csv = t.to_csv();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_NE(csv.find("A,B"), std::string::npos);
  EXPECT_NE(csv.find("3,4"), std::string::npos);
}

TEST(TextTableTest, CsvSanitizesEmbeddedCommas) {
  TextTable t({"Name"});
  t.add_row({"a,b"});
  EXPECT_NE(t.to_csv().find("a;b"), std::string::npos);
}

TEST(TextTableTest, CountsReflectContents) {
  TextTable t({"A", "B", "C"});
  EXPECT_EQ(t.column_count(), 3u);
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(TextTableTest, StreamsViaOperator) {
  TextTable t({"X"});
  t.add_row({"y"});
  std::ostringstream os;
  os << t;
  EXPECT_EQ(os.str(), t.to_string());
}

}  // namespace
}  // namespace hprs
