#include "hsi/io.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hprs::hsi {
namespace {

class HsiIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("hprs_io_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string stem(const std::string& name) const {
    return (dir_ / name).string();
  }

  static HsiCube random_cube(std::size_t rows, std::size_t cols,
                             std::size_t bands, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    HsiCube cube(rows, cols, bands);
    for (auto& v : cube.samples()) {
      v = static_cast<float>(rng.uniform(0.0, 1.0));
    }
    return cube;
  }

  std::filesystem::path dir_;
};

TEST_F(HsiIoTest, WritesHeaderAndRawPair) {
  write_envi(random_cube(4, 5, 6, 1), stem("cube"));
  EXPECT_TRUE(std::filesystem::exists(stem("cube") + ".hdr"));
  EXPECT_TRUE(std::filesystem::exists(stem("cube") + ".raw"));
  EXPECT_EQ(std::filesystem::file_size(stem("cube") + ".raw"),
            4u * 5u * 6u * sizeof(float));
}

TEST_F(HsiIoTest, HeaderCarriesEnviKeys) {
  write_envi(random_cube(4, 5, 6, 1), stem("cube"), Interleave::kBil);
  std::ifstream hdr(stem("cube") + ".hdr");
  std::string text((std::istreambuf_iterator<char>(hdr)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("samples = 5"), std::string::npos);
  EXPECT_NE(text.find("lines = 4"), std::string::npos);
  EXPECT_NE(text.find("bands = 6"), std::string::npos);
  EXPECT_NE(text.find("interleave = bil"), std::string::npos);
  EXPECT_NE(text.find("data type = 4"), std::string::npos);
}

TEST_F(HsiIoTest, RefusesToWriteEmptyCube) {
  EXPECT_THROW(write_envi(HsiCube(), stem("empty")), Error);
}

TEST_F(HsiIoTest, MissingHeaderThrows) {
  EXPECT_THROW((void)read_envi(stem("nonexistent")), Error);
}

TEST_F(HsiIoTest, TruncatedRawThrows) {
  write_envi(random_cube(4, 4, 4, 2), stem("trunc"));
  std::filesystem::resize_file(stem("trunc") + ".raw", 10);
  EXPECT_THROW((void)read_envi(stem("trunc")), Error);
}

TEST_F(HsiIoTest, CorruptHeaderThrows) {
  {
    std::ofstream hdr(stem("bad") + ".hdr");
    hdr << "ENVI\nsamples = 4\n";  // missing lines/bands/type
  }
  EXPECT_THROW((void)read_envi(stem("bad")), Error);
}

TEST_F(HsiIoTest, RejectsUnsupportedDataType) {
  {
    std::ofstream hdr(stem("dt") + ".hdr");
    hdr << "ENVI\nsamples = 2\nlines = 2\nbands = 2\ndata type = 2\n"
        << "interleave = bip\nbyte order = 0\n";
  }
  {
    std::ofstream raw(stem("dt") + ".raw", std::ios::binary);
    raw << "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx";
  }
  EXPECT_THROW((void)read_envi(stem("dt")), Error);
}

TEST_F(HsiIoTest, RejectsMissingEnviMagic) {
  {
    std::ofstream hdr(stem("nomagic") + ".hdr");
    hdr << "samples = 2\nlines = 2\nbands = 2\ndata type = 4\n"
        << "interleave = bip\n";
  }
  try {
    (void)read_envi(stem("nomagic"));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("ENVI magic"), std::string::npos);
  }
}

TEST_F(HsiIoTest, RejectsNonNumericDimensionNamingTheKey) {
  {
    std::ofstream hdr(stem("badnum") + ".hdr");
    hdr << "ENVI\nsamples = 2\nlines = twelve\nbands = 2\ndata type = 4\n"
        << "interleave = bip\n";
  }
  try {
    (void)read_envi(stem("badnum"));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("'lines'"), std::string::npos);
  }
}

TEST_F(HsiIoTest, RejectsNegativeDimension) {
  {
    std::ofstream hdr(stem("neg") + ".hdr");
    hdr << "ENVI\nsamples = -4\nlines = 2\nbands = 2\ndata type = 4\n"
        << "interleave = bip\n";
  }
  EXPECT_THROW((void)read_envi(stem("neg")), Error);
}

TEST_F(HsiIoTest, RejectsZeroDimension) {
  {
    std::ofstream hdr(stem("zero") + ".hdr");
    hdr << "ENVI\nsamples = 0\nlines = 2\nbands = 2\ndata type = 4\n"
        << "interleave = bip\n";
  }
  EXPECT_THROW((void)read_envi(stem("zero")), Error);
}

TEST_F(HsiIoTest, RejectsOverflowingDimensions) {
  {
    std::ofstream hdr(stem("huge") + ".hdr");
    // 2^64 does not fit a std::size_t digit-by-digit parse...
    hdr << "ENVI\nsamples = 18446744073709551616\nlines = 2\nbands = 2\n"
        << "data type = 4\ninterleave = bip\n";
  }
  EXPECT_THROW((void)read_envi(stem("huge")), Error);
  {
    std::ofstream hdr(stem("hugeprod") + ".hdr");
    // ...and neither does the product of three individually valid values.
    hdr << "ENVI\nsamples = 4294967295\nlines = 4294967295\nbands = 224\n"
        << "data type = 4\ninterleave = bip\n";
  }
  EXPECT_THROW((void)read_envi(stem("hugeprod")), Error);
}

TEST_F(HsiIoTest, RejectsUnknownInterleave) {
  {
    std::ofstream hdr(stem("il") + ".hdr");
    hdr << "ENVI\nsamples = 2\nlines = 2\nbands = 2\ndata type = 4\n"
        << "interleave = bipx\n";
  }
  EXPECT_THROW((void)read_envi(stem("il")), Error);
}

TEST_F(HsiIoTest, RejectsBigEndianCube) {
  {
    std::ofstream hdr(stem("be") + ".hdr");
    hdr << "ENVI\nsamples = 2\nlines = 2\nbands = 2\ndata type = 4\n"
        << "interleave = bip\nbyte order = 1\n";
  }
  EXPECT_THROW((void)read_envi(stem("be")), Error);
}

TEST_F(HsiIoTest, RejectsEmbeddedHeaderOffset) {
  {
    std::ofstream hdr(stem("off") + ".hdr");
    hdr << "ENVI\nsamples = 2\nlines = 2\nbands = 2\ndata type = 4\n"
        << "interleave = bip\nheader offset = 512\n";
  }
  EXPECT_THROW((void)read_envi(stem("off")), Error);
}

class IoInterleaveSweep : public ::testing::TestWithParam<Interleave> {};

TEST_P(IoInterleaveSweep, RoundTripsExactly) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("hprs_io_sweep_" + std::string(to_string(GetParam())));
  std::filesystem::create_directories(dir);
  const std::string stem = (dir / "cube").string();

  Xoshiro256 rng(42);
  HsiCube cube(7, 5, 9);
  for (auto& v : cube.samples()) v = static_cast<float>(rng.uniform(0, 2));

  write_envi(cube, stem, GetParam());
  const HsiCube back = read_envi(stem);
  ASSERT_EQ(back.rows(), cube.rows());
  ASSERT_EQ(back.cols(), cube.cols());
  ASSERT_EQ(back.bands(), cube.bands());
  for (std::size_t i = 0; i < cube.sample_count(); ++i) {
    ASSERT_EQ(back.samples()[i], cube.samples()[i]);
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, IoInterleaveSweep,
                         ::testing::Values(Interleave::kBip, Interleave::kBil,
                                           Interleave::kBsq),
                         [](const auto& param_info) {
                           return to_string(param_info.param);
                         });

}  // namespace
}  // namespace hprs::hsi
