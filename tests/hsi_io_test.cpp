#include "hsi/io.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hprs::hsi {
namespace {

class HsiIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("hprs_io_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string stem(const std::string& name) const {
    return (dir_ / name).string();
  }

  static HsiCube random_cube(std::size_t rows, std::size_t cols,
                             std::size_t bands, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    HsiCube cube(rows, cols, bands);
    for (auto& v : cube.samples()) {
      v = static_cast<float>(rng.uniform(0.0, 1.0));
    }
    return cube;
  }

  std::filesystem::path dir_;
};

TEST_F(HsiIoTest, WritesHeaderAndRawPair) {
  write_envi(random_cube(4, 5, 6, 1), stem("cube"));
  EXPECT_TRUE(std::filesystem::exists(stem("cube") + ".hdr"));
  EXPECT_TRUE(std::filesystem::exists(stem("cube") + ".raw"));
  EXPECT_EQ(std::filesystem::file_size(stem("cube") + ".raw"),
            4u * 5u * 6u * sizeof(float));
}

TEST_F(HsiIoTest, HeaderCarriesEnviKeys) {
  write_envi(random_cube(4, 5, 6, 1), stem("cube"), Interleave::kBil);
  std::ifstream hdr(stem("cube") + ".hdr");
  std::string text((std::istreambuf_iterator<char>(hdr)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("samples = 5"), std::string::npos);
  EXPECT_NE(text.find("lines = 4"), std::string::npos);
  EXPECT_NE(text.find("bands = 6"), std::string::npos);
  EXPECT_NE(text.find("interleave = bil"), std::string::npos);
  EXPECT_NE(text.find("data type = 4"), std::string::npos);
}

TEST_F(HsiIoTest, RefusesToWriteEmptyCube) {
  EXPECT_THROW(write_envi(HsiCube(), stem("empty")), Error);
}

TEST_F(HsiIoTest, MissingHeaderThrows) {
  EXPECT_THROW((void)read_envi(stem("nonexistent")), Error);
}

TEST_F(HsiIoTest, TruncatedRawThrows) {
  write_envi(random_cube(4, 4, 4, 2), stem("trunc"));
  std::filesystem::resize_file(stem("trunc") + ".raw", 10);
  EXPECT_THROW((void)read_envi(stem("trunc")), Error);
}

TEST_F(HsiIoTest, CorruptHeaderThrows) {
  {
    std::ofstream hdr(stem("bad") + ".hdr");
    hdr << "ENVI\nsamples = 4\n";  // missing lines/bands/type
  }
  EXPECT_THROW((void)read_envi(stem("bad")), Error);
}

TEST_F(HsiIoTest, RejectsUnsupportedDataType) {
  {
    std::ofstream hdr(stem("dt") + ".hdr");
    hdr << "ENVI\nsamples = 2\nlines = 2\nbands = 2\ndata type = 2\n"
        << "interleave = bip\nbyte order = 0\n";
  }
  {
    std::ofstream raw(stem("dt") + ".raw", std::ios::binary);
    raw << "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx";
  }
  EXPECT_THROW((void)read_envi(stem("dt")), Error);
}

class IoInterleaveSweep : public ::testing::TestWithParam<Interleave> {};

TEST_P(IoInterleaveSweep, RoundTripsExactly) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("hprs_io_sweep_" + std::string(to_string(GetParam())));
  std::filesystem::create_directories(dir);
  const std::string stem = (dir / "cube").string();

  Xoshiro256 rng(42);
  HsiCube cube(7, 5, 9);
  for (auto& v : cube.samples()) v = static_cast<float>(rng.uniform(0, 2));

  write_envi(cube, stem, GetParam());
  const HsiCube back = read_envi(stem);
  ASSERT_EQ(back.rows(), cube.rows());
  ASSERT_EQ(back.cols(), cube.cols());
  ASSERT_EQ(back.bands(), cube.bands());
  for (std::size_t i = 0; i < cube.sample_count(); ++i) {
    ASSERT_EQ(back.samples()[i], cube.samples()[i]);
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, IoInterleaveSweep,
                         ::testing::Values(Interleave::kBip, Interleave::kBil,
                                           Interleave::kBsq),
                         [](const auto& param_info) {
                           return to_string(param_info.param);
                         });

}  // namespace
}  // namespace hprs::hsi
