#include "core/partition.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"
#include "simnet/platform.hpp"

namespace hprs::core {
namespace {

WorkloadModel compute_only() {
  WorkloadModel m;
  m.flops_per_pixel = 1000.0;
  m.bytes_per_pixel = 4;
  m.scatter_input = false;
  return m;
}

/// Checks that the partitions tile [0, rows) exactly, in rank order.
void expect_tiling(const PartitionResult& result, std::size_t rows) {
  std::size_t row = 0;
  for (const auto& part : result.parts) {
    EXPECT_EQ(part.row_begin, row);
    EXPECT_GE(part.owned_rows(), 1u);
    row = part.row_end;
  }
  EXPECT_EQ(row, rows);
}

TEST(WeaPartitionTest, HomogeneousPolicySplitsEqually) {
  const auto platform = simnet::fully_heterogeneous();
  const auto result = wea_partition(platform, 160, 32, compute_only(),
                                    PartitionPolicy::kHomogeneous);
  expect_tiling(result, 160);
  for (const auto& part : result.parts) {
    EXPECT_EQ(part.owned_rows(), 10u);
  }
  for (double a : result.alpha) {
    EXPECT_NEAR(a, 1.0 / 16.0, 1e-12);
  }
}

TEST(WeaPartitionTest, HeterogeneousSharesAreProportionalToSpeed) {
  // With negligible communication the DLT recursion degenerates to the
  // paper's alpha_i ~ 1/w_i.
  const auto platform = simnet::fully_heterogeneous();
  const auto result = wea_partition(platform, 1600, 32, compute_only(),
                                    PartitionPolicy::kHeterogeneous);
  expect_tiling(result, 1600);
  const double total_speed = [&] {
    double s = 0.0;
    for (std::size_t i = 0; i < platform.size(); ++i) s += platform.speed(i);
    return s;
  }();
  for (std::size_t i = 0; i < platform.size(); ++i) {
    EXPECT_NEAR(result.alpha[i], platform.speed(i) / total_speed, 1e-9)
        << "rank " << i;
  }
  // p3 (fastest) gets the most rows, p10 (slowest) the fewest.
  EXPECT_GT(result.parts[2].owned_rows(), result.parts[9].owned_rows());
}

TEST(WeaPartitionTest, AlphaSumsToOne) {
  for (const auto policy :
       {PartitionPolicy::kHomogeneous, PartitionPolicy::kHeterogeneous}) {
    const auto result = wea_partition(simnet::fully_heterogeneous(), 640, 64,
                                      compute_only(), policy);
    const double sum =
        std::accumulate(result.alpha.begin(), result.alpha.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(WeaPartitionTest, CommunicationAwareSharesShiftTowardCheapLinks) {
  // Identical processors on the Table 2 network with full data staging:
  // the DLT recursion must assign more work to segments close to the root.
  WorkloadModel model;
  model.flops_per_pixel = 1000.0;
  model.bytes_per_pixel = 896;
  model.scatter_input = true;
  const auto platform = simnet::partially_homogeneous();
  const auto result = wea_partition(platform, 1600, 32, model,
                                    PartitionPolicy::kHeterogeneous);
  // Rank 1 shares the root's fast segment (19.26); rank 15 sits behind the
  // slowest inter-segment link (154.76).
  EXPECT_GT(result.alpha[1], result.alpha[15]);
}

TEST(WeaPartitionTest, MemoryCapsTriggerRedistribution) {
  // Two processors: equally fast, but the first can hold only a sliver.
  std::vector<simnet::ProcessorSpec> procs = {
      {"small", "t", 0.01, 1, 512, 0},   // 1 MB memory
      {"big", "t", 0.01, 4096, 512, 0},  // 4 GB memory
  };
  const simnet::Platform platform("capped", std::move(procs), {{10.0}});
  // 1024 rows x 256 cols x 4 B = 1 MB total; cap the small node to 25% of
  // its 1 MB => it may hold at most a quarter of the image.
  const auto result =
      wea_partition(platform, 1024, 256, compute_only(),
                    PartitionPolicy::kHeterogeneous, /*memory_fraction=*/0.25);
  expect_tiling(result, 1024);
  EXPECT_LE(result.alpha[0], 0.25 + 1e-9);
  EXPECT_NEAR(result.alpha[0] + result.alpha[1], 1.0, 1e-9);
}

TEST(WeaPartitionTest, ThrowsWhenImageExceedsAggregateMemory) {
  std::vector<simnet::ProcessorSpec> procs = {
      {"tiny1", "t", 0.01, 1, 512, 0},
      {"tiny2", "t", 0.01, 1, 512, 0},
  };
  const simnet::Platform platform("tiny", std::move(procs), {{10.0}});
  // 64 MB image into 2 MB of aggregate memory.
  EXPECT_THROW((void)wea_partition(platform, 4096, 4096, compute_only(),
                                   PartitionPolicy::kHeterogeneous),
               Error);
}

TEST(WeaPartitionTest, OverlapAddsClampedHalos) {
  const auto platform = simnet::fully_homogeneous();
  const auto result =
      wea_partition(platform, 160, 32, compute_only(),
                    PartitionPolicy::kHomogeneous, 0.5, /*overlap=*/3);
  // First partition's halo clamps at the image top.
  EXPECT_EQ(result.parts.front().halo_begin, 0u);
  EXPECT_EQ(result.parts.front().halo_end,
            result.parts.front().row_end + 3);
  // Interior partitions get symmetric halos.
  const auto& mid = result.parts[7];
  EXPECT_EQ(mid.halo_begin, mid.row_begin - 3);
  EXPECT_EQ(mid.halo_end, mid.row_end + 3);
  // Last partition clamps at the bottom.
  EXPECT_EQ(result.parts.back().halo_end, 160u);
}

TEST(WeaPartitionTest, EveryRankGetsAtLeastOneRow) {
  // Extreme heterogeneity: the slowest node's exact share rounds to zero
  // rows, but the partitioner must still give it one.
  const auto platform = simnet::synthetic_heterogeneous(8, 1000.0, 0.01, 10.0);
  const auto result = wea_partition(platform, 64, 8, compute_only(),
                                    PartitionPolicy::kHeterogeneous);
  expect_tiling(result, 64);
}

TEST(WeaPartitionTest, ValidatesArguments) {
  const auto platform = simnet::fully_homogeneous();
  EXPECT_THROW((void)wea_partition(platform, 8, 32, compute_only(),
                                   PartitionPolicy::kHomogeneous),
               Error);  // fewer rows than processors
  EXPECT_THROW((void)wea_partition(platform, 160, 0, compute_only(),
                                   PartitionPolicy::kHomogeneous),
               Error);
  EXPECT_THROW((void)wea_partition(platform, 160, 32, compute_only(),
                                   PartitionPolicy::kHomogeneous, 0.0),
               Error);
  EXPECT_THROW((void)wea_partition(platform, 160, 32, compute_only(),
                                   PartitionPolicy::kHomogeneous, 0.5, 0,
                                   /*root=*/99),
               Error);
}

TEST(WeaPartitionTest, IsDeterministic) {
  const auto platform = simnet::fully_heterogeneous();
  const auto a = wea_partition(platform, 777, 31, compute_only(),
                               PartitionPolicy::kHeterogeneous);
  const auto b = wea_partition(platform, 777, 31, compute_only(),
                               PartitionPolicy::kHeterogeneous);
  ASSERT_EQ(a.parts.size(), b.parts.size());
  for (std::size_t i = 0; i < a.parts.size(); ++i) {
    EXPECT_EQ(a.parts[i].row_begin, b.parts[i].row_begin);
    EXPECT_EQ(a.parts[i].row_end, b.parts[i].row_end);
  }
}

class PartitionRowSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PartitionRowSweep, TilesExactlyForAnyRowCount) {
  const std::size_t rows = GetParam();
  for (const auto policy :
       {PartitionPolicy::kHomogeneous, PartitionPolicy::kHeterogeneous}) {
    const auto result = wea_partition(simnet::fully_heterogeneous(), rows, 16,
                                      compute_only(), policy);
    expect_tiling(result, rows);
  }
}

INSTANTIATE_TEST_SUITE_P(RowCounts, PartitionRowSweep,
                         ::testing::Values(16, 17, 31, 100, 128, 333, 2133));

TEST(SpectralPartitionTest, CoversAllBands) {
  const auto parts = spectral_partition(simnet::fully_heterogeneous(), 224,
                                        PartitionPolicy::kHeterogeneous);
  ASSERT_EQ(parts.size(), 16u);
  std::size_t band = 0;
  for (const auto& [begin, end] : parts) {
    EXPECT_EQ(begin, band);
    EXPECT_GE(end, begin);
    band = end;
  }
  EXPECT_EQ(band, 224u);
}

TEST(SpectralPartitionTest, HomogeneousSplitIsRoughlyEqual) {
  const auto parts = spectral_partition(simnet::fully_homogeneous(), 224,
                                        PartitionPolicy::kHomogeneous);
  for (const auto& [begin, end] : parts) {
    EXPECT_NEAR(static_cast<double>(end - begin), 14.0, 1.0);
  }
}

TEST(SpectralPartitionTest, RejectsFewerBandsThanRanks) {
  EXPECT_THROW((void)spectral_partition(simnet::fully_homogeneous(), 8,
                                        PartitionPolicy::kHomogeneous),
               Error);
}

TEST(PolicyNamesTest, AreStable) {
  EXPECT_STREQ(to_string(PartitionPolicy::kHomogeneous), "homogeneous");
  EXPECT_STREQ(to_string(PartitionPolicy::kHeterogeneous), "heterogeneous");
}


TEST(WeaPartitionTest, SyncRoundsAmortizeTheStagingTransfer) {
  // With many synchronized rounds the one-time staging transfer stops
  // mattering and the fractions converge to the pure-speed split.
  WorkloadModel model;
  model.flops_per_pixel = 1000.0;
  model.bytes_per_pixel = 896;
  model.scatter_input = true;
  const auto platform = simnet::partially_homogeneous();

  model.sync_rounds = 1.0;
  const auto single = wea_partition(platform, 1600, 32, model,
                                    PartitionPolicy::kHeterogeneous);
  model.sync_rounds = 1e6;
  const auto iterative = wea_partition(platform, 1600, 32, model,
                                       PartitionPolicy::kHeterogeneous);
  // Single-round: near segments get clearly more work.
  EXPECT_GT(single.alpha[1], single.alpha[15] * 1.1);
  // Heavily iterative: equal processors -> essentially equal fractions.
  EXPECT_NEAR(iterative.alpha[1], iterative.alpha[15], 0.001);
  // And the skew shrinks monotonically with the round count.
  EXPECT_LT(iterative.alpha[1] - iterative.alpha[15],
            single.alpha[1] - single.alpha[15]);
}

TEST(WeaPartitionTest, RootOverrideMovesTheFreeTransferSlot) {
  WorkloadModel model;
  model.flops_per_pixel = 1000.0;
  model.bytes_per_pixel = 896;
  model.scatter_input = true;
  const auto platform = simnet::partially_homogeneous();
  const auto from_p1 = wea_partition(platform, 1600, 32, model,
                                     PartitionPolicy::kHeterogeneous, 0.5, 0,
                                     /*root=*/0);
  const auto from_p16 = wea_partition(platform, 1600, 32, model,
                                      PartitionPolicy::kHeterogeneous, 0.5, 0,
                                      /*root=*/15);
  // Rank 1 shares segment s1: favored when the root sits there, not when
  // the root moved to segment s4.
  EXPECT_GT(from_p1.alpha[1], from_p16.alpha[1]);
}

}  // namespace
}  // namespace hprs::core
