#include "hsi/metrics.hpp"

#include <gtest/gtest.h>

#include <numbers>
#include <vector>

#include "common/rng.hpp"

namespace hprs::hsi {
namespace {

std::vector<float> random_spectrum(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(0.05, 1.0));
  return v;
}

TEST(SadTest, IdenticalSpectraHaveZeroAngle) {
  const auto a = random_spectrum(64, 1);
  EXPECT_NEAR((sad<float, float>(a, a)), 0.0, 1e-6);
}

TEST(SadTest, IsSymmetric) {
  const auto a = random_spectrum(64, 2);
  const auto b = random_spectrum(64, 3);
  EXPECT_DOUBLE_EQ((sad<float, float>(a, b)), (sad<float, float>(b, a)));
}

TEST(SadTest, IsScaleInvariant) {
  const auto a = random_spectrum(64, 4);
  std::vector<float> scaled(a);
  for (auto& v : scaled) v *= 7.5f;
  EXPECT_NEAR((sad<float, float>(a, scaled)), 0.0, 1e-5);
}

TEST(SadTest, OrthogonalSpectraAreHalfPi) {
  std::vector<float> a = {1, 0, 0, 0};
  std::vector<float> b = {0, 1, 0, 0};
  EXPECT_NEAR((sad<float, float>(a, b)), std::numbers::pi / 2, 1e-9);
}

TEST(SadTest, OppositeSpectraArePi) {
  std::vector<float> a = {1, 1};
  std::vector<float> b = {-1, -1};
  EXPECT_NEAR((sad<float, float>(a, b)), std::numbers::pi, 1e-6);
}

TEST(SadTest, ZeroSpectrumConventions) {
  std::vector<float> zero(8, 0.0f);
  const auto a = random_spectrum(8, 5);
  EXPECT_EQ((sad<float, float>(zero, zero)), 0.0);
  EXPECT_NEAR((sad<float, float>(zero, a)), std::numbers::pi / 2, 1e-12);
}

TEST(SadTest, SatisfiesTriangleInequalityOnSamples) {
  // SAD is a metric on the unit sphere; spot-check the triangle inequality
  // on random triples.
  for (std::uint64_t s = 0; s < 32; ++s) {
    const auto a = random_spectrum(32, 3 * s + 1);
    const auto b = random_spectrum(32, 3 * s + 2);
    const auto c = random_spectrum(32, 3 * s + 3);
    const double ab = sad<float, float>(a, b);
    const double bc = sad<float, float>(b, c);
    const double ac = sad<float, float>(a, c);
    EXPECT_LE(ac, ab + bc + 1e-9);
  }
}

TEST(SadTest, MixedPrecisionOverloadAgrees) {
  const auto a = random_spectrum(16, 9);
  std::vector<double> ad(a.begin(), a.end());
  EXPECT_NEAR((sad<double, float>(ad, a)), 0.0, 1e-7);
}

TEST(EuclideanTest, MatchesHandComputation) {
  std::vector<float> a = {1, 2, 3};
  std::vector<float> b = {2, 0, 3};
  EXPECT_DOUBLE_EQ(euclidean_sq<float>(a, b), 5.0);
}

TEST(EuclideanTest, ZeroForIdentical) {
  const auto a = random_spectrum(32, 11);
  EXPECT_DOUBLE_EQ(euclidean_sq<float>(a, a), 0.0);
}

TEST(SidTest, ZeroForIdenticalSpectra) {
  const auto a = random_spectrum(64, 13);
  EXPECT_NEAR(sid<float>(a, a), 0.0, 1e-12);
}

TEST(SidTest, PositiveForDistinctAndSymmetric) {
  const auto a = random_spectrum(64, 14);
  const auto b = random_spectrum(64, 15);
  const double ab = sid<float>(a, b);
  EXPECT_GT(ab, 0.0);
  EXPECT_NEAR(ab, sid<float>(b, a), 1e-12);
}

TEST(SidTest, ScaleInvariantLikeAllProbabilityDivergences) {
  const auto a = random_spectrum(64, 16);
  std::vector<float> scaled(a);
  for (auto& v : scaled) v *= 3.0f;
  EXPECT_NEAR(sid<float>(a, scaled), 0.0, 1e-9);
}

TEST(SidTest, ToleratesZeroBands) {
  std::vector<float> a = {0.0f, 0.5f, 0.5f};
  std::vector<float> b = {0.5f, 0.5f, 0.0f};
  const double d = sid<float>(a, b);
  EXPECT_TRUE(std::isfinite(d));
  EXPECT_GT(d, 0.0);
}

class MetricBandSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MetricBandSweep, SadStaysInRange) {
  const std::size_t n = GetParam();
  for (std::uint64_t s = 0; s < 16; ++s) {
    const auto a = random_spectrum(n, 100 + s);
    const auto b = random_spectrum(n, 200 + s);
    const double d = sad<float, float>(a, b);
    ASSERT_GE(d, 0.0);
    ASSERT_LE(d, std::numbers::pi);
  }
}

INSTANTIATE_TEST_SUITE_P(Bands, MetricBandSweep,
                         ::testing::Values(2, 8, 64, 224));

}  // namespace
}  // namespace hprs::hsi
