#include "hsi/cube.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"

namespace hprs::hsi {
namespace {

/// Cube whose sample at (r, c, b) equals r*10000 + c*100 + b.
HsiCube coded_cube(std::size_t rows, std::size_t cols, std::size_t bands) {
  HsiCube cube(rows, cols, bands);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const auto px = cube.pixel(r, c);
      for (std::size_t b = 0; b < bands; ++b) {
        px[b] = static_cast<float>(r * 10000 + c * 100 + b);
      }
    }
  }
  return cube;
}

TEST(HsiCubeTest, DimensionsAndCounts) {
  const HsiCube cube(4, 5, 6);
  EXPECT_EQ(cube.rows(), 4u);
  EXPECT_EQ(cube.cols(), 5u);
  EXPECT_EQ(cube.bands(), 6u);
  EXPECT_EQ(cube.pixel_count(), 20u);
  EXPECT_EQ(cube.sample_count(), 120u);
  EXPECT_EQ(cube.bytes_per_pixel(), 24u);
  EXPECT_FALSE(cube.empty());
}

TEST(HsiCubeTest, DefaultConstructedIsEmpty) {
  const HsiCube cube;
  EXPECT_TRUE(cube.empty());
  EXPECT_EQ(cube.pixel_count(), 0u);
}

TEST(HsiCubeTest, RejectsZeroDimensions) {
  EXPECT_THROW(HsiCube(0, 1, 1), Error);
  EXPECT_THROW(HsiCube(1, 0, 1), Error);
  EXPECT_THROW(HsiCube(1, 1, 0), Error);
}

TEST(HsiCubeTest, RejectsMismatchedSampleBuffer) {
  EXPECT_THROW(HsiCube(2, 2, 2, std::vector<float>(7)), Error);
}

TEST(HsiCubeTest, PixelAccessIsBipContiguous) {
  const HsiCube cube = coded_cube(3, 4, 5);
  const auto px = cube.pixel(2, 3);
  for (std::size_t b = 0; b < 5; ++b) {
    EXPECT_EQ(px[b], 2 * 10000 + 3 * 100 + static_cast<float>(b));
  }
  // Linear pixel indexing agrees with (row, col) indexing.
  const auto flat = cube.pixel(2 * 4 + 3);
  EXPECT_EQ(flat.data(), px.data());
}

TEST(HsiCubeTest, RowBlockCoversWholeRows) {
  const HsiCube cube = coded_cube(4, 3, 2);
  const auto block = cube.row_block(1, 3);
  EXPECT_EQ(block.size(), 2u * 3u * 2u);
  EXPECT_EQ(block[0], cube.pixel(1, 0)[0]);
  EXPECT_THROW((void)cube.row_block(3, 2), Error);
  EXPECT_THROW((void)cube.row_block(0, 5), Error);
}

TEST(HsiCubeTest, CopyRowsIsDeepAndOffset) {
  const HsiCube cube = coded_cube(5, 2, 3);
  const HsiCube sub = cube.copy_rows(2, 4);
  EXPECT_EQ(sub.rows(), 2u);
  EXPECT_EQ(sub.cols(), 2u);
  EXPECT_EQ(sub.bands(), 3u);
  EXPECT_EQ(sub.pixel(0, 0)[0], cube.pixel(2, 0)[0]);
  EXPECT_EQ(sub.pixel(1, 1)[2], cube.pixel(3, 1)[2]);
}

class InterleaveSweep : public ::testing::TestWithParam<Interleave> {};

TEST_P(InterleaveSweep, RoundTripsThroughInterleave) {
  const HsiCube cube = coded_cube(3, 5, 4);
  const auto samples = cube.to_interleave(GetParam());
  const HsiCube back =
      HsiCube::from_interleave(3, 5, 4, GetParam(), samples);
  ASSERT_EQ(back.sample_count(), cube.sample_count());
  for (std::size_t i = 0; i < cube.pixel_count(); ++i) {
    const auto a = cube.pixel(i);
    const auto b = back.pixel(i);
    for (std::size_t k = 0; k < cube.bands(); ++k) {
      ASSERT_EQ(a[k], b[k]);
    }
  }
}

TEST_P(InterleaveSweep, FromInterleaveRejectsWrongSize) {
  EXPECT_THROW(HsiCube::from_interleave(2, 2, 2, GetParam(),
                                        std::vector<float>(7)),
               Error);
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, InterleaveSweep,
                         ::testing::Values(Interleave::kBip, Interleave::kBil,
                                           Interleave::kBsq),
                         [](const auto& param_info) {
                           return to_string(param_info.param);
                         });

TEST(HsiCubeTest, BsqOrderingIsBandMajor) {
  const HsiCube cube = coded_cube(2, 2, 2);
  const auto bsq = cube.to_interleave(Interleave::kBsq);
  // First plane = band 0 of all pixels in row-major order.
  EXPECT_EQ(bsq[0], cube.pixel(0, 0)[0]);
  EXPECT_EQ(bsq[1], cube.pixel(0, 1)[0]);
  EXPECT_EQ(bsq[2], cube.pixel(1, 0)[0]);
  EXPECT_EQ(bsq[3], cube.pixel(1, 1)[0]);
  EXPECT_EQ(bsq[4], cube.pixel(0, 0)[1]);
}

TEST(HsiCubeTest, BilOrderingIsLineMajor) {
  const HsiCube cube = coded_cube(2, 3, 2);
  const auto bil = cube.to_interleave(Interleave::kBil);
  // Row 0: band 0 of cols 0..2, then band 1 of cols 0..2.
  EXPECT_EQ(bil[0], cube.pixel(0, 0)[0]);
  EXPECT_EQ(bil[1], cube.pixel(0, 1)[0]);
  EXPECT_EQ(bil[2], cube.pixel(0, 2)[0]);
  EXPECT_EQ(bil[3], cube.pixel(0, 0)[1]);
}

TEST(HsiCubeTest, InterleaveNamesAreStable) {
  EXPECT_STREQ(to_string(Interleave::kBip), "bip");
  EXPECT_STREQ(to_string(Interleave::kBil), "bil");
  EXPECT_STREQ(to_string(Interleave::kBsq), "bsq");
}

}  // namespace
}  // namespace hprs::hsi
