#include "core/morph.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/error.hpp"
#include "simnet/platform.hpp"
#include "test_scenes.hpp"

namespace hprs::core {
namespace {

double stripe_accuracy(const ClassificationResult& result, std::size_t rows,
                       std::size_t cols, std::size_t classes) {
  std::size_t correct = 0;
  for (std::size_t cls = 0; cls < classes; ++cls) {
    const std::size_t r_begin = cls * rows / classes;
    const std::size_t r_end = (cls + 1) * rows / classes;
    std::map<std::uint16_t, std::size_t> votes;
    for (std::size_t r = r_begin; r < r_end; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        ++votes[result.labels[r * cols + c]];
      }
    }
    std::size_t best = 0;
    for (const auto& [label, n] : votes) best = std::max(best, n);
    correct += best;
  }
  return static_cast<double>(correct) / static_cast<double>(rows * cols);
}

MorphConfig small_config(std::size_t classes) {
  MorphConfig cfg;
  cfg.classes = classes;
  cfg.iterations = 2;
  cfg.kernel_radius = 1;
  return cfg;
}

TEST(MorphTest, SeparatesWellSeparatedStripes) {
  const auto cube = testing::striped_cube(48, 32, 32, 3);
  const auto result =
      run_morph(simnet::fully_heterogeneous(), cube, small_config(3));
  ASSERT_EQ(result.labels.size(), cube.pixel_count());
  EXPECT_GT(stripe_accuracy(result, 48, 32, 3), 0.9);
}

TEST(MorphTest, UniformImageCollapsesToOneClass) {
  hsi::HsiCube cube(24, 24, 16);
  for (auto& v : cube.samples()) v = 0.5f;
  const auto result = run_morph(simnet::thunderhead(2), cube, small_config(4));
  EXPECT_EQ(result.label_count, 1u);
}

TEST(MorphTest, LabelsStayBelowLabelCount) {
  const auto cube = testing::striped_cube(36, 24, 24, 3);
  const auto result = run_morph(simnet::thunderhead(3), cube, small_config(3));
  for (const auto label : result.labels) {
    ASSERT_LT(label, result.label_count);
  }
}

TEST(MorphTest, AccuracyHoldsAcrossProcessorCounts) {
  const auto cube = testing::striped_cube(64, 24, 24, 3);
  for (const std::size_t p : {1u, 4u, 8u}) {
    const auto result =
        run_morph(simnet::thunderhead(p), cube, small_config(3));
    EXPECT_GT(stripe_accuracy(result, 64, 24, 3), 0.9) << "P=" << p;
  }
}

TEST(MorphTest, OverlapAndExchangeModesAgreeAlmostEverywhere) {
  // The two halo strategies are different approximations near partition
  // seams; their label images must agree on the vast majority of pixels.
  const auto cube = testing::striped_cube(64, 24, 24, 3);
  MorphConfig overlap = small_config(3);
  overlap.iterations = 3;
  MorphConfig exchange = overlap;
  exchange.overlap_borders = false;
  const auto a = run_morph(simnet::thunderhead(8), cube, overlap);
  const auto b = run_morph(simnet::thunderhead(8), cube, exchange);
  ASSERT_EQ(a.labels.size(), b.labels.size());
  std::size_t agree = 0;
  for (std::size_t i = 0; i < a.labels.size(); ++i) {
    if (a.labels[i] == b.labels[i]) ++agree;
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(a.labels.size()),
            0.97);
}

TEST(MorphTest, ExchangeModeCostsMoreCommunication) {
  const auto cube = testing::striped_cube(64, 24, 24, 3);
  MorphConfig overlap = small_config(3);
  overlap.iterations = 4;
  MorphConfig exchange = overlap;
  exchange.overlap_borders = false;
  const auto platform = simnet::fully_heterogeneous();
  const auto a = run_morph(platform, cube, overlap);
  const auto b = run_morph(platform, cube, exchange);
  EXPECT_LT(a.report.total_bytes_moved(), b.report.total_bytes_moved());
}

TEST(MorphTest, SingleProcessorAndParallelRunsAgreeOnTheClassification) {
  // Label ids are arbitrary cluster indices that may differ across
  // partitionings; the classification itself (majority structure per
  // stripe) must hold at every processor count.
  const auto cube = testing::striped_cube(48, 16, 24, 3);
  const auto cfg = small_config(3);
  const auto r1 = run_morph(simnet::thunderhead(1), cube, cfg);
  const auto r4 = run_morph(simnet::thunderhead(4), cube, cfg);
  EXPECT_GT(stripe_accuracy(r1, 48, 16, 3), 0.9);
  EXPECT_GT(stripe_accuracy(r4, 48, 16, 3), 0.9);
}

TEST(MorphTest, HeteroBeatsHomoOnHeterogeneousPlatform) {
  const auto cube = testing::striped_cube(64, 32, 32, 3);
  MorphConfig het = small_config(3);
  het.replication = 64;
  MorphConfig homo = het;
  homo.policy = PartitionPolicy::kHomogeneous;
  const auto platform = simnet::fully_heterogeneous();
  EXPECT_LT(run_morph(platform, cube, het).report.total_time,
            run_morph(platform, cube, homo).report.total_time * 0.6);
}

TEST(MorphTest, MorphSeqShareIsSmall) {
  // The paper's Table 6: MORPH has by far the smallest sequential
  // component of the four algorithms.
  const auto cube = testing::striped_cube(64, 32, 32, 3);
  MorphConfig cfg = small_config(3);
  cfg.replication = 64;
  const auto result = run_morph(simnet::fully_heterogeneous(), cube, cfg);
  EXPECT_LT(result.report.seq(), 0.05 * result.report.total_time);
}

TEST(MorphTest, ValidatesInputs) {
  const auto cube = testing::striped_cube(32, 16, 16, 2);
  MorphConfig cfg = small_config(2);
  cfg.classes = 0;
  EXPECT_THROW((void)run_morph(simnet::thunderhead(2), cube, cfg), Error);
  cfg = small_config(2);
  cfg.iterations = 0;
  EXPECT_THROW((void)run_morph(simnet::thunderhead(2), cube, cfg), Error);
  cfg = small_config(2);
  cfg.kernel_radius = 0;
  EXPECT_THROW((void)run_morph(simnet::thunderhead(2), cube, cfg), Error);
  cfg = small_config(2);
  EXPECT_THROW((void)run_morph(simnet::thunderhead(2), hsi::HsiCube(), cfg),
               Error);
}

class MorphKernelSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MorphKernelSweep, LargerKernelsCostMoreVirtualTime) {
  const auto cube = testing::striped_cube(48, 24, 24, 3);
  MorphConfig small = small_config(3);
  small.kernel_radius = 1;
  MorphConfig large = small;
  large.kernel_radius = GetParam();
  const auto platform = simnet::thunderhead(4);
  const auto t_small = run_morph(platform, cube, small).report.total_time;
  const auto t_large = run_morph(platform, cube, large).report.total_time;
  EXPECT_GT(t_large, t_small);
}

INSTANTIATE_TEST_SUITE_P(Radii, MorphKernelSweep, ::testing::Values(2, 3));

}  // namespace
}  // namespace hprs::core
