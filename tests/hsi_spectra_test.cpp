#include "hsi/spectra.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "hsi/metrics.hpp"

namespace hprs::hsi {
namespace {

TEST(WavelengthsTest, SpansAvirisRange) {
  const auto wl = wavelengths_um(224);
  ASSERT_EQ(wl.size(), 224u);
  EXPECT_DOUBLE_EQ(wl.front(), 0.4);
  EXPECT_DOUBLE_EQ(wl.back(), 2.5);
  EXPECT_TRUE(std::is_sorted(wl.begin(), wl.end()));
}

TEST(WavelengthsTest, RejectsDegenerateGrids) {
  EXPECT_THROW((void)wavelengths_um(1), Error);
}

TEST(MaterialTest, DebrisListMatchesTable4Rows) {
  const auto debris = debris_materials();
  ASSERT_EQ(debris.size(), 7u);
  EXPECT_STREQ(to_string(debris[0]), "Concrete (WTC01-37B)");
  EXPECT_STREQ(to_string(debris[1]), "Concrete (WTC01-37Am)");
  EXPECT_STREQ(to_string(debris[2]), "Cement (WTC01-37A)");
  EXPECT_STREQ(to_string(debris[3]), "Dust (WTC01-15)");
  EXPECT_STREQ(to_string(debris[4]), "Dust (WTC01-28)");
  EXPECT_STREQ(to_string(debris[5]), "Dust (WTC01-36)");
  EXPECT_STREQ(to_string(debris[6]), "Gypsum wall board");
}

class MaterialSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MaterialSweep, ReflectanceStaysPhysical) {
  const auto wl = wavelengths_um(224);
  const auto r = reflectance(static_cast<Material>(GetParam()), wl);
  ASSERT_EQ(r.size(), wl.size());
  for (double v : r) {
    ASSERT_GE(v, 0.0);
    ASSERT_LE(v, 1.0);
  }
}

TEST_P(MaterialSweep, ReflectanceIsDeterministic) {
  const auto wl = wavelengths_um(64);
  const auto m = static_cast<Material>(GetParam());
  EXPECT_EQ(reflectance(m, wl), reflectance(m, wl));
}

TEST_P(MaterialSweep, HasNonTrivialSpectralStructure) {
  const auto wl = wavelengths_um(224);
  const auto r = reflectance(static_cast<Material>(GetParam()), wl);
  const auto [lo, hi] = std::minmax_element(r.begin(), r.end());
  EXPECT_GT(*hi - *lo, 0.01);  // not a flat line
}

INSTANTIATE_TEST_SUITE_P(AllMaterials, MaterialSweep,
                         ::testing::Range<std::size_t>(0, kMaterialCount));

TEST(MaterialTest, DebrisClassesAreMutuallyDistinguishable) {
  // The unique-set machinery needs every debris pair to exceed the default
  // SAD dedup threshold; this is the property the classification tables
  // depend on.
  const auto wl = wavelengths_um(224);
  const auto debris = debris_materials();
  for (std::size_t i = 0; i < debris.size(); ++i) {
    for (std::size_t j = i + 1; j < debris.size(); ++j) {
      const auto a = reflectance(debris[i], wl);
      const auto b = reflectance(debris[j], wl);
      EXPECT_GT((sad<double, double>(a, b)), 0.08)
          << to_string(debris[i]) << " vs " << to_string(debris[j]);
    }
  }
}

TEST(BlackbodyTest, HotterIsBrighterEverywhereInWindow) {
  const auto wl = wavelengths_um(128);
  const auto cool = blackbody_radiance(fahrenheit_to_kelvin(700), wl);
  const auto hot = blackbody_radiance(fahrenheit_to_kelvin(1300), wl);
  for (std::size_t b = 0; b < wl.size(); ++b) {
    ASSERT_GT(hot[b], cool[b]);
  }
}

TEST(BlackbodyTest, PeaksAtLongWavelengthEnd) {
  // For 640-980 K the Planck peak lies beyond 2.5 um, so radiance must be
  // monotonically increasing across the AVIRIS window.
  const auto wl = wavelengths_um(64);
  const auto bb = blackbody_radiance(fahrenheit_to_kelvin(1000), wl);
  EXPECT_TRUE(std::is_sorted(bb.begin(), bb.end()));
}

TEST(BlackbodyTest, ReferenceTemperatureNormalizesToUnitPeak) {
  const auto wl = wavelengths_um(224);
  const auto bb = blackbody_radiance(fahrenheit_to_kelvin(1300), wl);
  EXPECT_NEAR(*std::max_element(bb.begin(), bb.end()), 1.0, 1e-12);
}

TEST(BlackbodyTest, RejectsNonPositiveTemperature) {
  const auto wl = wavelengths_um(16);
  EXPECT_THROW((void)blackbody_radiance(0.0, wl), Error);
  EXPECT_THROW((void)blackbody_radiance(-10.0, wl), Error);
}

TEST(TemperatureTest, FahrenheitConversionsAreExact) {
  EXPECT_DOUBLE_EQ(fahrenheit_to_kelvin(32.0), 273.15);
  EXPECT_NEAR(fahrenheit_to_kelvin(700.0), 644.26, 0.01);
  EXPECT_NEAR(fahrenheit_to_kelvin(1300.0), 977.59, 0.01);
}

}  // namespace
}  // namespace hprs::hsi
