#include "common/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/error.hpp"

namespace hprs {
namespace {

/// Sets an environment variable for one test and restores the previous
/// value (or unsets) on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

TEST(EnvIntTest, UnsetReturnsNulloptAndFallback) {
  ::unsetenv("HPRS_TEST_ENV_INT");
  EXPECT_FALSE(env_int("HPRS_TEST_ENV_INT", 0, 100).has_value());
  EXPECT_EQ(env_int_or("HPRS_TEST_ENV_INT", 42, 0, 100), 42);
}

TEST(EnvIntTest, EmptyValueActsAsUnset) {
  const ScopedEnv env("HPRS_TEST_ENV_INT", "");
  EXPECT_FALSE(env_int("HPRS_TEST_ENV_INT", 0, 100).has_value());
  EXPECT_EQ(env_int_or("HPRS_TEST_ENV_INT", 7, 0, 100), 7);
}

TEST(EnvIntTest, ParsesAValidInteger) {
  const ScopedEnv env("HPRS_TEST_ENV_INT", "64");
  EXPECT_EQ(env_int("HPRS_TEST_ENV_INT", 1, 4096).value(), 64);
  EXPECT_EQ(env_int_or("HPRS_TEST_ENV_INT", 1, 1, 4096), 64);
}

TEST(EnvIntTest, MalformedValueNamesTheVariable) {
  const ScopedEnv env("HPRS_TEST_ENV_INT", "four");
  try {
    (void)env_int("HPRS_TEST_ENV_INT", 0, 100);
    FAIL() << "expected an Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("HPRS_TEST_ENV_INT"),
              std::string::npos);
  }
}

TEST(EnvIntTest, TrailingGarbageIsMalformed) {
  const ScopedEnv env("HPRS_TEST_ENV_INT", "12abc");
  EXPECT_THROW((void)env_int("HPRS_TEST_ENV_INT", 0, 100), Error);
}

TEST(EnvIntTest, OutOfRangeNamesTheVariableAndBounds) {
  const ScopedEnv env("HPRS_TEST_ENV_INT", "5000");
  try {
    (void)env_int("HPRS_TEST_ENV_INT", 1, 4096);
    FAIL() << "expected an Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("HPRS_TEST_ENV_INT"), std::string::npos);
    EXPECT_NE(what.find("4096"), std::string::npos);
  }
}

TEST(EnvIntTest, MalformedValueThrowsEvenWithAFallback) {
  // env_int_or falls back only when the variable is unset/empty; a value
  // that is present but malformed is a configuration error, not a default.
  const ScopedEnv env("HPRS_TEST_ENV_INT", "not-a-number");
  EXPECT_THROW((void)env_int_or("HPRS_TEST_ENV_INT", 1, 0, 100), Error);
}

}  // namespace
}  // namespace hprs
