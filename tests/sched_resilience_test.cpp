// Cluster-level resilience (sched/resilience.hpp + the scheduler's
// resilient mode):
//
//  * outputs first -- a checkpointed, crashed, preempted, or elastically
//    resized job's outputs equal an *uninterrupted* solo run of the same
//    fault-tolerant program on the gang that froze its chunks, bit for
//    bit (replay + chunk-id-order folds must never change the science);
//  * determinism second -- a fixed fault plan yields bit-identical
//    records, outputs, lost-rank sets, and stable metrics across repeated
//    runs and across both host execution modes, including a many-rank
//    stress schedule;
//  * double faults -- a crash during another crash's recovery, a crash
//    inside the checkpoint write window, and preempt-then-crash on a
//    resized gang all keep the invariants;
//  * verdicts and guardrails -- retries exhaust into kDegraded (with
//    checkpoints) or kFailed (without), and malformed cluster fault plans
//    are rejected at schedule construction with the offending plan key.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/error.hpp"
#include "core/ft.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "sched/resilience.hpp"
#include "sched/scheduler.hpp"
#include "test_scenes.hpp"
#include "vmpi/comm.hpp"
#include "vmpi/engine.hpp"

namespace hprs::sched {
namespace {

simnet::Platform cluster(std::size_t n) {
  std::vector<simnet::ProcessorSpec> procs;
  for (std::size_t i = 0; i < n; ++i) {
    procs.push_back(simnet::ProcessorSpec{
        "p" + std::to_string(i), "t",
        0.001 * static_cast<double>(1 + i % 3), 1024, 512, 0});
  }
  return simnet::Platform("sched-resil", std::move(procs), {{10.0}});
}

vmpi::Options fast_options(
    vmpi::ExecMode mode = vmpi::ExecMode::kBoundedExecutor) {
  vmpi::Options o;
  o.per_message_latency_s = 0.0;
  o.deadlock_timeout_s = 120.0;
  o.exec_mode = mode;
  return o;
}

hsi::HsiCube test_scene() { return testing::striped_cube(32, 16, 24, 4); }

/// A mixed five-algorithm stream with staggered arrivals (the scheduler
/// test's stream, reused so base and resilient modes face the same load).
std::vector<JobSpec> mixed_stream() {
  std::vector<JobSpec> stream;
  JobSpec a;
  a.id = 1;
  a.algorithm = JobAlgorithm::kAtdca;
  a.arrival_s = 0.0;
  a.ranks = 3;
  a.targets = 4;
  stream.push_back(a);
  JobSpec b;
  b.id = 2;
  b.algorithm = JobAlgorithm::kPct;
  b.arrival_s = 0.0;
  b.ranks = 2;
  b.classes = 3;
  stream.push_back(b);
  JobSpec c;
  c.id = 3;
  c.algorithm = JobAlgorithm::kPpi;
  c.arrival_s = 0.002;
  c.ranks = 2;
  c.targets = 4;
  c.skewers = 32;
  stream.push_back(c);
  JobSpec d;
  d.id = 4;
  d.algorithm = JobAlgorithm::kMorph;
  d.arrival_s = 0.004;
  d.ranks = 2;
  d.classes = 3;
  d.iterations = 2;
  d.kernel_radius = 1;
  stream.push_back(d);
  JobSpec e;
  e.id = 5;
  e.algorithm = JobAlgorithm::kUfcls;
  e.arrival_s = 0.004;
  e.ranks = 3;
  e.targets = 3;
  stream.push_back(e);
  return stream;
}

/// One long ATDCA job: wide enough to be resized, with enough phase
/// boundaries (one per target) to take several periodic checkpoints.
std::vector<JobSpec> long_job(int ranks, std::size_t replication = 8) {
  JobSpec spec;
  spec.id = 1;
  spec.algorithm = JobAlgorithm::kAtdca;
  spec.arrival_s = 0.0;
  spec.ranks = ranks;
  spec.targets = 8;
  spec.replication = replication;
  return {spec};
}

SchedulerConfig resilient_config(double checkpoint_interval_s = 0.0,
                                 int max_attempts = 4) {
  SchedulerConfig config;
  config.resilience.enabled = true;
  config.resilience.checkpoint_interval_s = checkpoint_interval_s;
  config.resilience.retry.max_attempts = max_attempts;
  return config;
}

void expect_attempts_equal(const std::vector<JobAttempt>& a,
                           const std::vector<JobAttempt>& b,
                           std::uint64_t job_id) {
  ASSERT_EQ(a.size(), b.size()) << "job " << job_id;
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].attempt, b[k].attempt) << "job " << job_id << " #" << k;
    EXPECT_EQ(a[k].dispatch_s, b[k].dispatch_s) << "job " << job_id;
    EXPECT_EQ(a[k].end_s, b[k].end_s) << "job " << job_id;
    EXPECT_EQ(a[k].backoff_s, b[k].backoff_s) << "job " << job_id;
    EXPECT_EQ(a[k].width, b[k].width) << "job " << job_id;
    EXPECT_EQ(a[k].members, b[k].members) << "job " << job_id;
    EXPECT_EQ(a[k].resumed_seq, b[k].resumed_seq) << "job " << job_id;
    EXPECT_EQ(a[k].checkpoints, b[k].checkpoints) << "job " << job_id;
    EXPECT_EQ(a[k].checkpoint_s, b[k].checkpoint_s) << "job " << job_id;
    EXPECT_EQ(a[k].checkpoint_at_s, b[k].checkpoint_at_s) << "job " << job_id;
    EXPECT_EQ(a[k].outcome, b[k].outcome) << "job " << job_id;
  }
}

void expect_records_equal(const std::vector<JobRecord>& a,
                          const std::vector<JobRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << "job " << i;
    EXPECT_EQ(a[i].dispatch_s, b[i].dispatch_s) << "job " << i;
    EXPECT_EQ(a[i].finish_s, b[i].finish_s) << "job " << i;
    EXPECT_EQ(a[i].est_seconds, b[i].est_seconds) << "job " << i;
    EXPECT_EQ(a[i].members, b[i].members) << "job " << i;
    EXPECT_EQ(a[i].busy_s, b[i].busy_s) << "job " << i;
    EXPECT_EQ(a[i].rejected, b[i].rejected) << "job " << i;
    EXPECT_EQ(a[i].state, b[i].state) << "job " << i;
    EXPECT_EQ(a[i].error, b[i].error) << "job " << i;
    expect_attempts_equal(a[i].attempts, b[i].attempts, a[i].id);
  }
}

void expect_outputs_equal(const std::vector<JobOutput>& a,
                          const std::vector<JobOutput>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].targets, b[i].targets) << "job " << i;
    EXPECT_EQ(a[i].scores, b[i].scores) << "job " << i;
    EXPECT_EQ(a[i].labels, b[i].labels) << "job " << i;
    EXPECT_EQ(a[i].label_count, b[i].label_count) << "job " << i;
  }
}

/// The output oracle: the job's fault-tolerant program, run solo and
/// uninterrupted on `members` -- the gang whose WEA partition froze the
/// job's chunk list.  Any resilient execution (worker crashes absorbed,
/// checkpoint resume on a *different* width, preemption) must reproduce
/// this bit for bit.
JobOutput run_solo_ft(const simnet::Platform& platform,
                      const hsi::HsiCube& scene, const JobSpec& spec,
                      const std::vector<int>& members) {
  JobOutput out;
  vmpi::Engine engine(platform, fast_options());
  engine.run([&](vmpi::Comm& world) {
    if (std::find(members.begin(), members.end(), world.rank()) ==
        members.end()) {
      return;
    }
    vmpi::Comm sub = world.subset(members, spec.id);
    ProgramBundle bundle = make_job_program(spec, scene);
    core::ft::run_program(sub, scene, bundle.program);
    if (sub.is_root()) bundle.harvest(out);
  });
  return out;
}

void expect_output_matches_solo(const JobOutput& got, const JobOutput& solo,
                                std::uint64_t job_id) {
  EXPECT_EQ(got.targets, solo.targets) << "job " << job_id;
  EXPECT_EQ(got.scores, solo.scores) << "job " << job_id;
  EXPECT_EQ(got.labels, solo.labels) << "job " << job_id;
  EXPECT_EQ(got.label_count, solo.label_count) << "job " << job_id;
}

/// The gang that froze the completing attempt's chunks: the first attempt
/// when checkpoints carried the chunk list forward, the final attempt
/// after a cold restart re-partitioned from scratch.
const std::vector<int>& chunk_owner_members(const JobRecord& record,
                                            bool resumed) {
  return resumed ? record.attempts.front().members
                 : record.attempts.back().members;
}

TEST(SchedResilienceTest, NoFaultRunCompletesEverythingInOneAttempt) {
  const simnet::Platform platform = cluster(7);
  const hsi::HsiCube scene = test_scene();
  const std::vector<JobSpec> stream = mixed_stream();
  const ScheduleResult result = run_schedule(
      platform, scene, stream, resilient_config(), fast_options());

  EXPECT_EQ(result.completed(), stream.size());
  EXPECT_EQ(result.degraded(), 0u);
  EXPECT_EQ(result.failed(), 0u);
  EXPECT_TRUE(result.lost_ranks.empty());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const JobRecord& record = result.records[i];
    EXPECT_EQ(record.state, JobState::kCompleted) << "job " << record.id;
    ASSERT_EQ(record.attempts.size(), 1u) << "job " << record.id;
    const JobAttempt& attempt = record.attempts.front();
    EXPECT_EQ(attempt.attempt, 1) << "job " << record.id;
    EXPECT_EQ(attempt.outcome, "completed") << "job " << record.id;
    EXPECT_EQ(attempt.members, record.members) << "job " << record.id;
    // The baseline snapshot is always written, even with periodic
    // checkpointing disabled.
    EXPECT_GE(attempt.checkpoints, 1) << "job " << record.id;
    EXPECT_EQ(attempt.resumed_seq, 0) << "job " << record.id;
    const JobOutput solo =
        run_solo_ft(platform, scene, stream[i], record.members);
    expect_output_matches_solo(result.outputs[i], solo, record.id);
  }
}

TEST(SchedResilienceTest, FaultyScheduleBitIdenticalAcrossRunsAndModes) {
  const simnet::Platform platform = cluster(7);
  const hsi::HsiCube scene = test_scene();
  const std::vector<JobSpec> stream = mixed_stream();
  const SchedulerConfig config = resilient_config(0.002);

  // Derive crash times inside the schedule's busy window from a no-fault
  // run (virtual time is deterministic, so the faulty runs share the
  // prefix up to each crash).
  const ScheduleResult probe =
      run_schedule(platform, scene, stream, config, fast_options());
  ASSERT_EQ(probe.completed(), stream.size());
  vmpi::Options faulty = fast_options();
  faulty.fault_plan.crashes.push_back({2, 0.25 * probe.makespan_s});
  faulty.fault_plan.crashes.push_back({5, 0.55 * probe.makespan_s});

  obs::Metrics::Snapshot stable_a;
  ScheduleResult first;
  {
    obs::ScopedMetrics scoped;
    first = run_schedule(platform, scene, stream, config, faulty);
    stable_a = obs::Metrics::stable_subset(obs::Metrics::instance().snapshot());
  }
  obs::Metrics::Snapshot stable_b;
  ScheduleResult second;
  {
    obs::ScopedMetrics scoped;
    second = run_schedule(platform, scene, stream, config, faulty);
    stable_b = obs::Metrics::stable_subset(obs::Metrics::instance().snapshot());
  }
  vmpi::Options faulty_threads = faulty;
  faulty_threads.exec_mode = vmpi::ExecMode::kThreadPerRank;
  obs::Metrics::Snapshot stable_c;
  ScheduleResult threads;
  {
    obs::ScopedMetrics scoped;
    threads = run_schedule(platform, scene, stream, config, faulty_threads);
    stable_c = obs::Metrics::stable_subset(obs::Metrics::instance().snapshot());
  }

  expect_records_equal(first.records, second.records);
  expect_records_equal(first.records, threads.records);
  expect_outputs_equal(first.outputs, second.outputs);
  expect_outputs_equal(first.outputs, threads.outputs);
  EXPECT_EQ(first.lost_ranks, second.lost_ranks);
  EXPECT_EQ(first.lost_ranks, threads.lost_ranks);
  EXPECT_EQ(first.makespan_s, threads.makespan_s);
  EXPECT_EQ(stable_a, stable_b);
  EXPECT_EQ(stable_a, stable_c);

  // The crashes actually landed and were survived: both ranks left the
  // pool, yet every job still ran to completion.
  EXPECT_EQ(first.lost_ranks, (std::vector<int>{2, 5}));
  EXPECT_EQ(first.completed(), stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const JobRecord& record = first.records[i];
    ASSERT_FALSE(record.attempts.empty()) << "job " << record.id;
    const JobOutput solo = run_solo_ft(platform, scene, stream[i],
                                       chunk_owner_members(record, true));
    expect_output_matches_solo(first.outputs[i], solo, record.id);
  }

  // Resilience counters live in the stable (golden-comparable) domain.
  bool saw_attempts = false;
  for (const auto& [name, value] : stable_a) {
    if (name == "sched.resilience.attempts") saw_attempts = true;
  }
  EXPECT_TRUE(saw_attempts);
}

TEST(SchedResilienceTest, CrashDuringRecoveryIsAbsorbedWithinTheAttempt) {
  const simnet::Platform platform = cluster(4);  // dispatcher + 3 workers
  const hsi::HsiCube scene = test_scene();
  const std::vector<JobSpec> stream = long_job(3);
  const SchedulerConfig config = resilient_config();

  const ScheduleResult probe =
      run_schedule(platform, scene, stream, config, fast_options());
  ASSERT_EQ(probe.completed(), 1u);
  const JobRecord& solo_record = probe.records[0];
  ASSERT_EQ(solo_record.members, (std::vector<int>{1, 2, 3}));
  const double span = solo_record.finish_s - solo_record.dispatch_s;

  // Worker 2 dies mid-job; worker 3 dies while the master is still
  // redistributing 2's chunks.  Both are absorbed inside attempt 1 (the
  // leader survives), leaving the master to finish the job alone.
  vmpi::Options faulty = fast_options();
  faulty.fault_plan.crashes.push_back(
      {2, solo_record.dispatch_s + 0.40 * span});
  faulty.fault_plan.crashes.push_back(
      {3, solo_record.dispatch_s + 0.45 * span});

  const ScheduleResult result =
      run_schedule(platform, scene, stream, config, faulty);
  EXPECT_EQ(result.completed(), 1u);
  const JobRecord& record = result.records[0];
  EXPECT_EQ(record.state, JobState::kCompleted);
  ASSERT_EQ(record.attempts.size(), 1u);
  EXPECT_EQ(result.lost_ranks, (std::vector<int>{2, 3}));
  EXPECT_GT(record.finish_s, solo_record.finish_s);

  const JobOutput solo =
      run_solo_ft(platform, scene, stream[0], solo_record.members);
  expect_output_matches_solo(result.outputs[0], solo, record.id);
}

TEST(SchedResilienceTest, LeaderCrashResumesOnNarrowerGangBitIdentically) {
  const simnet::Platform platform = cluster(4);
  const hsi::HsiCube scene = test_scene();
  const std::vector<JobSpec> stream = long_job(3);

  // Calibrate a checkpoint cadence of roughly six commits per run.
  SchedulerConfig config = resilient_config();
  const ScheduleResult calib =
      run_schedule(platform, scene, stream, config, fast_options());
  ASSERT_EQ(calib.completed(), 1u);
  const double span = calib.records[0].finish_s - calib.records[0].dispatch_s;
  config.resilience.checkpoint_interval_s = span / 6.0;

  const ScheduleResult probe =
      run_schedule(platform, scene, stream, config, fast_options());
  ASSERT_EQ(probe.completed(), 1u);
  ASSERT_EQ(probe.records[0].members, (std::vector<int>{1, 2, 3}));
  ASSERT_GE(probe.records[0].attempts.front().checkpoints, 3);

  // Kill the gang *leader* three quarters in: the attempt dies, the
  // survivors report free, and the retry resumes the checkpoint on a
  // two-rank gang -- elastic resize across an attempt boundary.
  vmpi::Options faulty = fast_options();
  faulty.fault_plan.crashes.push_back(
      {1, probe.records[0].dispatch_s +
              0.75 * (probe.records[0].finish_s - probe.records[0].dispatch_s)});

  const ScheduleResult result =
      run_schedule(platform, scene, stream, config, faulty);
  EXPECT_EQ(result.completed(), 1u);
  const JobRecord& record = result.records[0];
  EXPECT_EQ(record.state, JobState::kCompleted);
  EXPECT_EQ(result.lost_ranks, (std::vector<int>{1}));
  ASSERT_EQ(record.attempts.size(), 2u);
  EXPECT_EQ(record.attempts[0].outcome, "leader crashed");
  EXPECT_EQ(record.attempts[1].outcome, "completed");
  EXPECT_EQ(record.attempts[1].width, 2);
  EXPECT_EQ(record.attempts[1].members, (std::vector<int>{2, 3}));
  // The retry waited out a positive backoff and replayed logged phases.
  EXPECT_GT(record.attempts[1].backoff_s, 0.0);
  EXPECT_GE(record.attempts[1].dispatch_s,
            record.attempts[0].end_s + record.attempts[1].backoff_s);
  EXPECT_GT(record.attempts[1].resumed_seq, 0);

  // The tentpole invariant: the resumed two-rank gang reproduces the
  // three-rank chunk partition's outputs bit for bit.
  const JobOutput solo =
      run_solo_ft(platform, scene, stream[0], record.attempts[0].members);
  expect_output_matches_solo(result.outputs[0], solo, record.id);
}

TEST(SchedResilienceTest, ColdRestartRecomputesOnSurvivorsBitIdentically) {
  const simnet::Platform platform = cluster(4);
  const hsi::HsiCube scene = test_scene();
  const std::vector<JobSpec> stream = long_job(3);
  SchedulerConfig config = resilient_config(0.0);
  config.resilience.resume_from_checkpoint = false;

  const ScheduleResult probe =
      run_schedule(platform, scene, stream, config, fast_options());
  ASSERT_EQ(probe.completed(), 1u);
  vmpi::Options faulty = fast_options();
  faulty.fault_plan.crashes.push_back(
      {1, probe.records[0].dispatch_s +
              0.5 * (probe.records[0].finish_s - probe.records[0].dispatch_s)});

  const ScheduleResult result =
      run_schedule(platform, scene, stream, config, faulty);
  EXPECT_EQ(result.completed(), 1u);
  const JobRecord& record = result.records[0];
  ASSERT_EQ(record.attempts.size(), 2u);
  // No store: nothing resumed, nothing checkpointed, retried from zero.
  EXPECT_EQ(record.attempts[1].resumed_seq, 0);
  EXPECT_EQ(record.attempts[0].checkpoints, 0);
  EXPECT_EQ(record.attempts[1].checkpoints, 0);
  // The retry re-partitioned on the surviving two-rank gang, so the oracle
  // is that gang's own uninterrupted run.
  const JobOutput solo =
      run_solo_ft(platform, scene, stream[0], record.attempts[1].members);
  expect_output_matches_solo(result.outputs[0], solo, record.id);
}

TEST(SchedResilienceTest, CrashInsideCheckpointWriteKeepsPreviousCommit) {
  const simnet::Platform platform = cluster(4);
  const hsi::HsiCube scene = test_scene();
  const std::vector<JobSpec> stream = long_job(3);

  SchedulerConfig config = resilient_config();
  const ScheduleResult calib =
      run_schedule(platform, scene, stream, config, fast_options());
  ASSERT_EQ(calib.completed(), 1u);
  const double span = calib.records[0].finish_s - calib.records[0].dispatch_s;
  config.resilience.checkpoint_interval_s = span / 6.0;

  const ScheduleResult probe =
      run_schedule(platform, scene, stream, config, fast_options());
  ASSERT_EQ(probe.completed(), 1u);
  const JobAttempt& attempt = probe.records[0].attempts.front();
  ASSERT_GE(attempt.checkpoints, 3);
  // Mean virtual cost of one checkpoint write (two compute halves).
  const double write_s =
      attempt.checkpoint_s / static_cast<double>(attempt.checkpoints);
  // Aim crashes around the *third* commit: shortly before it (inside the
  // write window, tearing the staged snapshot), at its first half, and a
  // hair after (the commit survives).  Whatever side of the torn window
  // each lands on, the job must complete bit-identically from whichever
  // snapshot actually committed.
  const double commit_t = attempt.checkpoint_at_s[2];
  ASSERT_GT(commit_t - write_s, attempt.checkpoint_at_s[1]);
  const double offsets[] = {0.9 * write_s, 0.4 * write_s, -0.25 * write_s};
  const JobOutput solo =
      run_solo_ft(platform, scene, stream[0], probe.records[0].members);

  for (const double off : offsets) {
    vmpi::Options faulty = fast_options();
    faulty.fault_plan.crashes.push_back({1, commit_t - off});
    const ScheduleResult result =
        run_schedule(platform, scene, stream, config, faulty);
    ASSERT_EQ(result.completed(), 1u) << "offset " << off;
    const JobRecord& record = result.records[0];
    ASSERT_EQ(record.attempts.size(), 2u) << "offset " << off;
    EXPECT_GT(record.attempts[1].resumed_seq, 0) << "offset " << off;
    expect_output_matches_solo(result.outputs[0], solo, record.id);
  }
}

TEST(SchedResilienceTest, PreemptThenCrashOnResizedGangStaysBitIdentical) {
  const simnet::Platform platform = cluster(4);
  const hsi::HsiCube scene = test_scene();
  const std::vector<JobSpec> stream = long_job(3);

  SchedulerConfig config = resilient_config();
  const ScheduleResult calib =
      run_schedule(platform, scene, stream, config, fast_options());
  ASSERT_EQ(calib.completed(), 1u);
  const double span0 = calib.records[0].finish_s - calib.records[0].dispatch_s;
  config.resilience.checkpoint_interval_s = span0 / 6.0;
  // The deadline must ration the *checkpointing* attempt, so measure that
  // one before deriving it.
  const ScheduleResult timed =
      run_schedule(platform, scene, stream, config, fast_options());
  ASSERT_EQ(timed.completed(), 1u);
  const double span = timed.records[0].finish_s - timed.records[0].dispatch_s;
  config.resilience.retry.attempt_deadline_s = 0.6 * span;
  config.resilience.retry.max_attempts = 5;

  // With the deadline alone, attempt 1 preempts and a later attempt
  // finishes the checkpointed tail.
  const ScheduleResult probe =
      run_schedule(platform, scene, stream, config, fast_options());
  ASSERT_EQ(probe.completed(), 1u);
  ASSERT_GE(probe.records[0].attempts.size(), 2u);
  EXPECT_EQ(probe.records[0].attempts[0].outcome, "preempted");
  const JobAttempt& second = probe.records[0].attempts[1];

  // Now also crash the second attempt's leader midway: the third attempt
  // resumes the (twice-checkpointed) job on a smaller gang.
  vmpi::Options faulty = fast_options();
  faulty.fault_plan.crashes.push_back(
      {second.members.front(),
       second.dispatch_s + 0.5 * (second.end_s - second.dispatch_s)});

  const ScheduleResult result =
      run_schedule(platform, scene, stream, config, faulty);
  EXPECT_EQ(result.completed(), 1u);
  const JobRecord& record = result.records[0];
  ASSERT_GE(record.attempts.size(), 3u);
  EXPECT_EQ(record.attempts[0].outcome, "preempted");
  EXPECT_EQ(record.attempts[1].outcome, "leader crashed");
  EXPECT_EQ(record.attempts.back().outcome, "completed");
  EXPECT_LT(record.attempts.back().width, 3);
  EXPECT_GT(record.attempts.back().resumed_seq, 0);
  // Preemption requeues without backoff; the crash retry waits one out.
  EXPECT_EQ(record.attempts[1].backoff_s, 0.0);
  EXPECT_GT(record.attempts[2].backoff_s, 0.0);

  const JobOutput solo =
      run_solo_ft(platform, scene, stream[0], record.attempts[0].members);
  expect_output_matches_solo(result.outputs[0], solo, record.id);
}

TEST(SchedResilienceTest, ExhaustedRetriesDegradeWithCheckpointsElseFail) {
  const simnet::Platform platform = cluster(3);  // dispatcher + 2 workers
  const hsi::HsiCube scene = test_scene();
  std::vector<JobSpec> stream = long_job(2);
  JobSpec late;  // arrives after the pool has died
  late.id = 2;
  late.algorithm = JobAlgorithm::kPpi;
  late.ranks = 1;
  late.targets = 3;
  late.skewers = 16;
  stream.push_back(late);

  SchedulerConfig config = resilient_config(0.0, 2);
  const ScheduleResult probe = run_schedule(
      platform, scene, {stream[0]}, config, fast_options());
  ASSERT_EQ(probe.completed(), 1u);
  const JobRecord& solo_record = probe.records[0];
  const double mid = solo_record.dispatch_s +
                     0.5 * (solo_record.finish_s - solo_record.dispatch_s);

  // Kill the first leader mid-attempt, then learn when the retry runs so
  // the second crash can kill the last worker inside attempt 2.  Adding a
  // later crash never perturbs the schedule before it fires.
  vmpi::Options one_crash = fast_options();
  one_crash.fault_plan.crashes.push_back({1, mid});
  const ScheduleResult staged =
      run_schedule(platform, scene, {stream[0]}, config, one_crash);
  ASSERT_EQ(staged.records[0].attempts.size(), 2u);
  const JobAttempt& retry = staged.records[0].attempts[1];
  ASSERT_EQ(retry.members, (std::vector<int>{2}));

  stream[1].arrival_s = retry.dispatch_s +
                        0.75 * (retry.end_s - retry.dispatch_s);
  vmpi::Options faulty = one_crash;
  faulty.fault_plan.crashes.push_back(
      {2, retry.dispatch_s + 0.5 * (retry.end_s - retry.dispatch_s)});

  const ScheduleResult result =
      run_schedule(platform, scene, stream, config, faulty);
  EXPECT_EQ(result.completed(), 0u);
  EXPECT_EQ(result.lost_ranks, (std::vector<int>{1, 2}));
  // Job 1 banked checkpoints (the baseline at minimum) before the cluster
  // died under it: degraded, not failed.
  EXPECT_EQ(result.records[0].state, JobState::kDegraded);
  EXPECT_EQ(result.degraded(), 1u);
  EXPECT_NE(result.records[0].error.find("no surviving workers"),
            std::string::npos)
      << result.records[0].error;
  // Job 2 arrived after the pool was gone and never ran: failed.
  EXPECT_EQ(result.records[1].state, JobState::kFailed);
  EXPECT_EQ(result.failed(), 1u);
  EXPECT_EQ(to_string(result.records[0].state), "degraded");
  EXPECT_EQ(to_string(result.records[1].state), "failed");

  // Without a checkpoint store the same collapse is a plain failure.  The
  // cold schedule paces differently (no checkpoint charges), so its crash
  // times are calibrated separately.
  SchedulerConfig cold = config;
  cold.resilience.resume_from_checkpoint = false;
  const ScheduleResult cold_probe =
      run_schedule(platform, scene, {stream[0]}, cold, fast_options());
  ASSERT_EQ(cold_probe.completed(), 1u);
  const JobRecord& cp = cold_probe.records[0];
  vmpi::Options cold_one = fast_options();
  cold_one.fault_plan.crashes.push_back(
      {1, cp.dispatch_s + 0.5 * (cp.finish_s - cp.dispatch_s)});
  const ScheduleResult cold_staged =
      run_schedule(platform, scene, {stream[0]}, cold, cold_one);
  ASSERT_EQ(cold_staged.records[0].attempts.size(), 2u);
  const JobAttempt& cold_retry = cold_staged.records[0].attempts[1];
  vmpi::Options cold_faulty = cold_one;
  cold_faulty.fault_plan.crashes.push_back(
      {2, cold_retry.dispatch_s +
              0.5 * (cold_retry.end_s - cold_retry.dispatch_s)});
  const ScheduleResult cold_result =
      run_schedule(platform, scene, {stream[0]}, cold, cold_faulty);
  EXPECT_EQ(cold_result.records[0].state, JobState::kFailed);
  EXPECT_EQ(cold_result.failed(), 1u);
}

TEST(SchedResilienceTest, AttemptTrackGroupsRenderRestartAndCheckpointMarks) {
  const simnet::Platform platform = cluster(4);
  const hsi::HsiCube scene = test_scene();
  const std::vector<JobSpec> stream = long_job(3);

  SchedulerConfig config = resilient_config();
  const ScheduleResult calib =
      run_schedule(platform, scene, stream, config, fast_options());
  ASSERT_EQ(calib.completed(), 1u);
  const double span0 = calib.records[0].finish_s - calib.records[0].dispatch_s;
  config.resilience.checkpoint_interval_s = span0 / 6.0;

  // A fault-free checkpointing run: one group per attempt, every commit a
  // "checkpoint" mark on the job lane.
  const ScheduleResult probe =
      run_schedule(platform, scene, stream, config, fast_options());
  ASSERT_EQ(probe.completed(), 1u);
  const JobAttempt& solo_attempt = probe.records[0].attempts.front();
  ASSERT_GE(solo_attempt.checkpoints, 3);
  const auto solo_groups = job_track_groups(probe);
  ASSERT_EQ(solo_groups.size(), 1u);
  EXPECT_EQ(solo_groups[0].label, "job:1/ATDCA#1");
  ASSERT_EQ(solo_groups[0].instants.size(),
            static_cast<std::size_t>(solo_attempt.checkpoints));
  for (const auto& mark : solo_groups[0].instants) {
    EXPECT_EQ(mark.label, "checkpoint");
  }
  const std::string solo_json =
      obs::chrome_trace_json(probe.report, solo_groups, {});
  EXPECT_NE(solo_json.find("\"name\":\"checkpoint\""), std::string::npos);
  EXPECT_NE(solo_json.find("\"cat\":\"resilience\""), std::string::npos);

  // A leader crash: the doomed attempt gets its own group (a dead leader
  // reports no marks), the resumed attempt leads with its restart mark.
  vmpi::Options faulty = fast_options();
  faulty.enable_trace = true;
  faulty.fault_plan.crashes.push_back(
      {1, probe.records[0].dispatch_s +
              0.75 * (probe.records[0].finish_s - probe.records[0].dispatch_s)});
  const ScheduleResult result =
      run_schedule(platform, scene, stream, config, faulty);
  ASSERT_EQ(result.completed(), 1u);
  ASSERT_EQ(result.records[0].attempts.size(), 2u);

  const auto groups = job_track_groups(result);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].label, "job:1/ATDCA#1");
  EXPECT_EQ(groups[1].label, "job:1/ATDCA#2");
  EXPECT_EQ(groups[0].members, result.records[0].attempts[0].members);
  EXPECT_EQ(groups[1].members, result.records[0].attempts[1].members);
  ASSERT_FALSE(groups[1].instants.empty());
  EXPECT_EQ(groups[1].instants.front().label, "restart (resumed)");
  EXPECT_EQ(groups[1].instants.front().t_s,
            result.records[0].attempts[1].dispatch_s);

  const std::string json = obs::chrome_trace_json(result.report, groups, {});
  EXPECT_NE(json.find("\"name\":\"job:1/ATDCA#2\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"restart (resumed)\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"resilience\""), std::string::npos);
}

TEST(SchedResilienceTest, RejectsMalformedClusterFaultPlans) {
  const simnet::Platform platform = cluster(4);
  const hsi::HsiCube scene = test_scene();
  const std::vector<JobSpec> stream = long_job(3);

  {  // A crash aimed at the dispatcher root is a plan bug.
    vmpi::Options options = fast_options();
    options.fault_plan.crashes.push_back({0, 0.5});
    try {
      (void)run_schedule(platform, scene, stream, resilient_config(), options);
      FAIL() << "expected hprs::Error";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("fault_plan.crashes[0].rank"),
                std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("dispatcher"), std::string::npos)
          << e.what();
    }
  }
  {  // Out-of-range ranks name the offending entry, not just "bad plan".
    vmpi::Options options = fast_options();
    options.fault_plan.crashes.push_back({1, 0.5});
    options.fault_plan.crashes.push_back({9, 0.5});
    try {
      (void)run_schedule(platform, scene, stream, resilient_config(), options);
      FAIL() << "expected hprs::Error";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("fault_plan.crashes[1].rank"),
                std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos)
          << e.what();
    }
  }
  {  // The base scheduler refuses crash plans outright.
    vmpi::Options options = fast_options();
    options.fault_plan.crashes.push_back({1, 0.5});
    try {
      (void)run_schedule(platform, scene, stream, SchedulerConfig{}, options);
      FAIL() << "expected hprs::Error";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("resilience"), std::string::npos)
          << e.what();
    }
  }
}

// Many-rank stress: a faulty resilient schedule on a Thunderhead-scale
// cluster stays bit-identical across repeated runs and both executor
// modes.  HPRS_STRESS_RANKS shrinks the world for sanitizer runs.
TEST(SchedResilienceTest, StressManyRanksBitIdenticalAcrossModes) {
  const int n = env_int_or("HPRS_STRESS_RANKS", 192, 8, 4096);
  const simnet::Platform platform = cluster(static_cast<std::size_t>(n));
  const hsi::HsiCube scene = test_scene();

  std::vector<JobSpec> stream = mixed_stream();
  for (JobSpec& spec : stream) {
    spec.ranks = std::max(2, n / 8);  // wide gangs across the big pool
  }
  SchedulerConfig config = resilient_config(0.002);

  const ScheduleResult probe =
      run_schedule(platform, scene, stream, config, fast_options());
  ASSERT_EQ(probe.completed(), stream.size());
  vmpi::Options faulty = fast_options();
  faulty.fault_plan.crashes.push_back({1, 0.20 * probe.makespan_s});
  faulty.fault_plan.crashes.push_back({n / 2, 0.45 * probe.makespan_s});
  faulty.fault_plan.crashes.push_back({n - 1, 0.70 * probe.makespan_s});

  const ScheduleResult first =
      run_schedule(platform, scene, stream, config, faulty);
  const ScheduleResult second =
      run_schedule(platform, scene, stream, config, faulty);
  vmpi::Options faulty_threads = faulty;
  faulty_threads.exec_mode = vmpi::ExecMode::kThreadPerRank;
  const ScheduleResult threads =
      run_schedule(platform, scene, stream, config, faulty_threads);

  expect_records_equal(first.records, second.records);
  expect_records_equal(first.records, threads.records);
  expect_outputs_equal(first.outputs, second.outputs);
  expect_outputs_equal(first.outputs, threads.outputs);
  EXPECT_EQ(first.lost_ranks, second.lost_ranks);
  EXPECT_EQ(first.lost_ranks, threads.lost_ranks);
  EXPECT_EQ(first.makespan_s, threads.makespan_s);
  EXPECT_EQ(first.completed(), stream.size());
}

}  // namespace
}  // namespace hprs::sched
