#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace hprs {
namespace {

TEST(SplitMix64Test, IsDeterministicForEqualSeeds) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64Test, MatchesReferenceVector) {
  // Reference values for seed 1234567 from the published SplitMix64 code.
  SplitMix64 g(1234567);
  EXPECT_EQ(g.next(), 6457827717110365317ULL);
  EXPECT_EQ(g.next(), 3203168211198807973ULL);
}

TEST(Xoshiro256Test, IsDeterministicForEqualSeeds) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(Xoshiro256Test, UniformStaysInHalfOpenUnitInterval) {
  Xoshiro256 g(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = g.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Xoshiro256Test, UniformRangeRespectsBounds) {
  Xoshiro256 g(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = g.uniform(-2.5, 7.5);
    ASSERT_GE(u, -2.5);
    ASSERT_LT(u, 7.5);
  }
}

TEST(Xoshiro256Test, UniformIntStaysBelowBound) {
  Xoshiro256 g(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const auto v = g.uniform_int(13);
    ASSERT_LT(v, 13u);
    seen.insert(v);
  }
  // All 13 residues should appear in 5000 draws.
  EXPECT_EQ(seen.size(), 13u);
}

TEST(Xoshiro256Test, UniformMeanIsNearOneHalf) {
  Xoshiro256 g(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += g.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256Test, NormalMomentsAreStandard) {
  Xoshiro256 g(17);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = g.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Xoshiro256Test, NormalWithParametersShiftsAndScales) {
  Xoshiro256 g(19);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += g.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Xoshiro256Test, ForkedStreamsAreDecorrelated) {
  Xoshiro256 parent(123);
  Xoshiro256 child = parent.fork();
  // The two streams should not collide over a modest horizon.
  std::set<std::uint64_t> a;
  std::set<std::uint64_t> b;
  for (int i = 0; i < 1000; ++i) {
    a.insert(parent.next());
    b.insert(child.next());
  }
  std::vector<std::uint64_t> common;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(common));
  EXPECT_TRUE(common.empty());
}

TEST(Xoshiro256Test, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~std::uint64_t{0});
  Xoshiro256 g(1);
  EXPECT_NE(g(), g());
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, CopiedGeneratorReplaysIdentically) {
  Xoshiro256 g(GetParam());
  for (int i = 0; i < 10; ++i) (void)g.next();
  Xoshiro256 copy = g;
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(g.next(), copy.next());
  }
}

TEST_P(RngSeedSweep, UniformIntOfOneIsAlwaysZero) {
  Xoshiro256 g(GetParam());
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(g.uniform_int(1), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 1u << 20,
                                           0xdeadbeefULL,
                                           ~std::uint64_t{0}));

}  // namespace
}  // namespace hprs
