// Property tests pinning the blocked fast-path kernels against the scalar
// reference loops.  Every comparison is EXACT (EXPECT_EQ on doubles): the
// fast paths are engineered to preserve each output element's chain of
// floating-point additions, and these tests are what enforce that contract
// across tile-remainder shapes.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "core/spmd_common.hpp"
#include "hsi/cube.hpp"
#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"
#include "linalg/solve.hpp"
#include "linalg/vec.hpp"

namespace hprs {
namespace {

linalg::Matrix random_matrix(std::size_t rows, std::size_t cols,
                             std::uint64_t seed) {
  Xoshiro256 rng(seed);
  linalg::Matrix m(rows, cols);
  for (auto& v : m.data()) v = rng.uniform(-1.0, 1.0);
  return m;
}

std::vector<float> random_floats(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(0.05, 1.0));
  return v;
}

std::vector<double> random_doubles(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-0.5, 0.5);
  return v;
}

// Sizes straddling the 4-wide register tiles: below, at, off-by-one, and
// well past the tile width, plus primes that never divide evenly.
class BlockedKernelTest : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(Sizes, BlockedKernelTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 17, 31));

TEST_P(BlockedKernelTest, MultiplyMatchesReferenceExactly) {
  const std::size_t n = GetParam();
  const linalg::Matrix a = random_matrix(n, n + 3, 100 + n);
  const linalg::Matrix b = random_matrix(n + 3, n + 1, 200 + n);
  linalg::Matrix ref;
  linalg::Matrix fast;
  {
    const linalg::ScopedKernelPath path(true);
    ref = a.multiply(b);
  }
  {
    const linalg::ScopedKernelPath path(false);
    fast = a.multiply(b);
  }
  ASSERT_EQ(ref.rows(), fast.rows());
  ASSERT_EQ(ref.cols(), fast.cols());
  for (std::size_t i = 0; i < ref.rows(); ++i) {
    for (std::size_t j = 0; j < ref.cols(); ++j) {
      EXPECT_EQ(ref(i, j), fast(i, j)) << "at (" << i << ", " << j << ")";
    }
  }
}

TEST_P(BlockedKernelTest, GramMatchesReferenceExactly) {
  const std::size_t n = GetParam();
  const linalg::Matrix a = random_matrix(n + 2, n, 300 + n);
  linalg::Matrix ref;
  linalg::Matrix fast;
  {
    const linalg::ScopedKernelPath path(true);
    ref = a.gram();
  }
  {
    const linalg::ScopedKernelPath path(false);
    fast = a.gram();
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(ref(i, j), fast(i, j)) << "at (" << i << ", " << j << ")";
    }
  }
}

TEST_P(BlockedKernelTest, DotStripMatchesPerPixelDot) {
  const std::size_t m = GetParam();
  const std::size_t bands = 37;
  const std::size_t t = 5;
  const linalg::Matrix u = random_matrix(t, bands, 400 + m);
  const std::vector<float> x = random_floats(m * bands, 500 + m);
  std::vector<double> out(m * t);
  linalg::dot_strip(u, x.data(), m, out);
  for (std::size_t p = 0; p < m; ++p) {
    const std::span<const float> px{x.data() + p * bands, bands};
    for (std::size_t i = 0; i < t; ++i) {
      EXPECT_EQ(out[p * t + i], (linalg::dot<double, float>(u.row(i), px)))
          << "pixel " << p << " row " << i;
    }
  }
}

TEST_P(BlockedKernelTest, DotStripDoubleMatchesPerPixelDot) {
  const std::size_t m = GetParam();
  const std::size_t bands = 19;
  const std::size_t t = 3;
  const linalg::Matrix u = random_matrix(t, bands, 600 + m);
  const std::vector<double> x = random_doubles(m * bands, 700 + m);
  std::vector<double> out(m * t);
  linalg::dot_strip(u, x.data(), m, out);
  for (std::size_t p = 0; p < m; ++p) {
    const std::span<const double> px{x.data() + p * bands, bands};
    for (std::size_t i = 0; i < t; ++i) {
      EXPECT_EQ(out[p * t + i], (linalg::dot<double, double>(u.row(i), px)));
    }
  }
}

TEST_P(BlockedKernelTest, NormSqStripMatchesPerPixelNormSq) {
  const std::size_t m = GetParam();
  const std::size_t bands = 23;
  const std::vector<float> x = random_floats(m * bands, 800 + m);
  std::vector<double> out(m);
  linalg::norm_sq_strip(x.data(), m, bands, out);
  for (std::size_t p = 0; p < m; ++p) {
    const std::span<const float> px{x.data() + p * bands, bands};
    EXPECT_EQ(out[p], linalg::norm_sq(px));
  }
}

TEST_P(BlockedKernelTest, SyrkMatchesRankOneLoopAcrossChainedStrips) {
  // Two consecutive strip updates must extend the per-element addition
  // chains exactly like the per-pixel rank-1 reference.
  const std::size_t n = GetParam();
  const std::size_t m1 = 6;
  const std::size_t m2 = 5;
  const std::size_t tri_n = n * (n + 1) / 2;
  const std::vector<double> x1 = random_doubles(m1 * n, 900 + n);
  const std::vector<double> x2 = random_doubles(m2 * n, 950 + n);

  std::vector<double> ref(tri_n, 0.0);
  for (const auto* strip : {&x1, &x2}) {
    const std::size_t m = strip == &x1 ? m1 : m2;
    for (std::size_t p = 0; p < m; ++p) {
      const double* row = strip->data() + p * n;
      std::size_t k = 0;
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
          ref[k++] += row[i] * row[j];
        }
      }
    }
  }

  std::vector<double> fast(tri_n, 0.0);
  linalg::syrk_tri_update(x1.data(), m1, n, fast.data());
  linalg::syrk_tri_update(x2.data(), m2, n, fast.data());
  for (std::size_t k = 0; k < tri_n; ++k) {
    EXPECT_EQ(ref[k], fast[k]) << "triangle element " << k;
  }
}

TEST_P(BlockedKernelTest, OspArgmaxSweepMatchesReference) {
  const std::size_t rows = GetParam();
  const std::size_t cols = 9;
  const std::size_t bands = 21;
  const std::size_t t = 4;
  hsi::HsiCube cube(rows, cols, bands,
                    random_floats(rows * cols * bands, 1000 + rows));
  const linalg::Matrix targets = random_matrix(t, bands, 1100 + rows);
  const linalg::Cholesky gram(core::detail::ridged_row_gram(targets));
  linalg::ScratchArena arena;

  core::detail::Candidate ref;
  core::detail::Candidate fast;
  {
    const linalg::ScopedKernelPath path(true);
    ref = core::detail::osp_argmax_sweep(targets, gram, cube, 0, rows, arena);
  }
  {
    const linalg::ScopedKernelPath path(false);
    fast = core::detail::osp_argmax_sweep(targets, gram, cube, 0, rows, arena);
  }
  EXPECT_EQ(ref.row, fast.row);
  EXPECT_EQ(ref.col, fast.col);
  EXPECT_EQ(ref.score, fast.score);
}

TEST(ScratchArenaTest, SpansStayValidAndStableAcrossTakes) {
  linalg::ScratchArena arena;
  const auto a = arena.take(100);
  const auto b = arena.take(200);
  a[0] = 1.0;
  a[99] = 2.0;
  b[0] = 3.0;
  b[199] = 4.0;
  // A chunk-spilling allocation must not move earlier spans.
  const auto c = arena.take(1 << 16);
  c[0] = 5.0;
  EXPECT_EQ(a[0], 1.0);
  EXPECT_EQ(a[99], 2.0);
  EXPECT_EQ(b[0], 3.0);
  EXPECT_EQ(b[199], 4.0);
}

TEST(ScratchArenaTest, ResetReusesMemory) {
  linalg::ScratchArena arena;
  const auto a = arena.take(64);
  const double* first = a.data();
  arena.reset();
  const auto b = arena.take(64);
  EXPECT_EQ(first, b.data());
}

TEST(KernelPathTest, ScopedToggleRestoresPreviousSetting) {
  const bool before = linalg::use_reference_kernels();
  {
    const linalg::ScopedKernelPath path(!before);
    EXPECT_EQ(linalg::use_reference_kernels(), !before);
    {
      const linalg::ScopedKernelPath inner(before);
      EXPECT_EQ(linalg::use_reference_kernels(), before);
    }
    EXPECT_EQ(linalg::use_reference_kernels(), !before);
  }
  EXPECT_EQ(linalg::use_reference_kernels(), before);
}

TEST(SolveIntoTest, MatchesAllocatingSolveExactly) {
  const linalg::Matrix a = random_matrix(6, 6, 1200);
  linalg::Matrix spd;
  {
    const linalg::ScopedKernelPath path(true);
    spd = a.gram();
  }
  for (std::size_t i = 0; i < 6; ++i) spd(i, i) += 6.0;
  const linalg::Cholesky chol(spd);
  const std::vector<double> b = random_doubles(6, 1300);
  const std::vector<double> x = chol.solve(b);
  std::vector<double> y(6);
  chol.solve_into(b, y);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(x[i], y[i]);
  }
}

}  // namespace
}  // namespace hprs
