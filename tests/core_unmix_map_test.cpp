#include "core/unmix_map.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "simnet/platform.hpp"
#include "test_scenes.hpp"

namespace hprs::core {
namespace {

/// A cube plus the locations of one pure pixel per stripe class.
struct Fixture {
  hsi::HsiCube cube;
  std::vector<PixelLocation> pure;
};

Fixture make_fixture(std::size_t classes) {
  Fixture f;
  f.cube = testing::striped_cube(48, 24, 32, classes, /*noise=*/0.0005);
  for (std::size_t k = 0; k < classes; ++k) {
    // Center of each stripe.
    f.pure.push_back({(2 * k + 1) * 48 / (2 * classes), 12});
  }
  return f;
}

TEST(UnmixMapTest, PurePixelsGetUnitAbundance) {
  const auto f = make_fixture(3);
  const auto endmembers = endmembers_at(f.cube, f.pure);
  const auto maps = run_unmix_map(simnet::fully_heterogeneous(), f.cube,
                                  endmembers, {});
  ASSERT_EQ(maps.endmembers, 3u);
  ASSERT_EQ(maps.planes.size(), 3u * f.cube.pixel_count());
  for (std::size_t e = 0; e < 3; ++e) {
    const auto& loc = f.pure[e];
    EXPECT_NEAR(maps.plane(e)[loc.row * maps.cols + loc.col], 1.0, 0.02)
        << "endmember " << e;
  }
}

TEST(UnmixMapTest, AbundancesAreAValidSimplex) {
  const auto f = make_fixture(3);
  const auto maps = run_unmix_map(simnet::thunderhead(4), f.cube,
                                  endmembers_at(f.cube, f.pure), {});
  for (std::size_t p = 0; p < f.cube.pixel_count(); ++p) {
    double sum = 0.0;
    for (std::size_t e = 0; e < 3; ++e) {
      const float a = maps.plane(e)[p];
      ASSERT_GE(a, 0.0f);
      ASSERT_LE(a, 1.0f + 1e-5f);
      sum += a;
    }
    ASSERT_NEAR(sum, 1.0, 1e-4);
  }
}

TEST(UnmixMapTest, DominantEndmemberFollowsTheStripes) {
  const auto f = make_fixture(3);
  const auto maps = run_unmix_map(simnet::thunderhead(2), f.cube,
                                  endmembers_at(f.cube, f.pure), {});
  std::size_t correct = 0;
  for (std::size_t r = 0; r < 48; ++r) {
    const std::size_t expected = std::min<std::size_t>(2, r * 3 / 48);
    for (std::size_t c = 0; c < 24; ++c) {
      if (maps.dominant(r, c) == expected) ++correct;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / (48.0 * 24.0), 0.95);
}

TEST(UnmixMapTest, RmseIsSmallForInDictionaryPixels) {
  const auto f = make_fixture(3);
  const auto maps = run_unmix_map(simnet::thunderhead(2), f.cube,
                                  endmembers_at(f.cube, f.pure), {});
  double mean_rmse = 0.0;
  for (const float v : maps.rmse) mean_rmse += v;
  mean_rmse /= static_cast<double>(maps.rmse.size());
  EXPECT_LT(mean_rmse, 0.05);
}

TEST(UnmixMapTest, ResultIsIndependentOfProcessorCount) {
  const auto f = make_fixture(2);
  const auto em = endmembers_at(f.cube, f.pure);
  const auto a = run_unmix_map(simnet::thunderhead(1), f.cube, em, {});
  const auto b = run_unmix_map(simnet::thunderhead(8), f.cube, em, {});
  ASSERT_EQ(a.planes.size(), b.planes.size());
  for (std::size_t i = 0; i < a.planes.size(); ++i) {
    ASSERT_EQ(a.planes[i], b.planes[i]);
  }
}

TEST(UnmixMapTest, HeteroBeatsHomoOnHeterogeneousPlatform) {
  const auto f = make_fixture(3);
  const auto em = endmembers_at(f.cube, f.pure);
  UnmixMapConfig het;
  het.replication = 64;
  UnmixMapConfig homo = het;
  homo.policy = PartitionPolicy::kHomogeneous;
  // Unlike the detectors, unmixing returns full abundance planes, so the
  // output gather dilutes the partitioning advantage; still a clear win.
  const auto platform = simnet::fully_heterogeneous();
  EXPECT_LT(run_unmix_map(platform, f.cube, em, het).report.total_time,
            run_unmix_map(platform, f.cube, em, homo).report.total_time * 0.85);
}

TEST(UnmixMapTest, EndmembersAtCopiesSpectra) {
  const auto f = make_fixture(2);
  const auto em = endmembers_at(f.cube, f.pure);
  EXPECT_EQ(em.rows(), 2u);
  EXPECT_EQ(em.cols(), f.cube.bands());
  const auto px = f.cube.pixel(f.pure[0].row, f.pure[0].col);
  for (std::size_t b = 0; b < f.cube.bands(); ++b) {
    EXPECT_DOUBLE_EQ(em(0, b), static_cast<double>(px[b]));
  }
}

TEST(UnmixMapTest, ValidatesInputs) {
  const auto f = make_fixture(2);
  EXPECT_THROW(
      (void)run_unmix_map(simnet::thunderhead(2), f.cube, linalg::Matrix(), {}),
      Error);
  const linalg::Matrix wrong_bands(2, 8);
  EXPECT_THROW((void)run_unmix_map(simnet::thunderhead(2), f.cube,
                                   wrong_bands, {}),
               Error);
  EXPECT_THROW((void)endmembers_at(f.cube, {}), Error);
}

}  // namespace
}  // namespace hprs::core
