// Many-rank stress test of the engine's two host execution modes.
//
// Runs a Thunderhead-scale (128-256 rank) program that mixes every
// communication primitive -- collectives (barrier, bcast, bcast_shared,
// gather, scatter, allreduce, exchange) and point-to-point (send/recv,
// isend + overlapped compute + wait) -- with tracing enabled, and asserts
// the full RunReport (clocks, every RankStats field, every trace event) is
// *bit-identical* across repeated runs, across engine reuse (scratch
// recycling), and across kBoundedExecutor vs kThreadPerRank.  This is the
// differential guarantee DESIGN.md §8 promises: host scheduling freedom
// never reaches the virtual clock.
//
// HPRS_STRESS_RANKS overrides the rank count (ThreadSanitizer runs use a
// smaller world so 2x-instrumented thread-per-rank mode stays fast).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/env.hpp"
#include "simnet/platform.hpp"
#include "vmpi/comm.hpp"
#include "vmpi/engine.hpp"

namespace hprs::vmpi {
namespace {

std::size_t stress_ranks() {
  return static_cast<std::size_t>(
      env_int_or("HPRS_STRESS_RANKS", 192, 2, 4096));
}

/// Mildly heterogeneous single-segment platform: cycle times vary by rank
/// so clocks, schedules, and trace events differ per rank.
simnet::Platform stress_platform(std::size_t n) {
  std::vector<simnet::ProcessorSpec> procs;
  procs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double w = 0.001 + 0.0001 * static_cast<double>(i % 7);
    procs.push_back(
        simnet::ProcessorSpec{"p" + std::to_string(i), "stress", w, 1024, 512,
                              0});
  }
  return simnet::Platform("stress", std::move(procs), {{10.0}});
}

Options stress_options(ExecMode mode) {
  Options o;
  o.deadlock_timeout_s = 60.0;
  o.enable_trace = true;
  o.exec_mode = mode;
  return o;
}

/// The stress program: every primitive, rank-dependent payloads.
void stress_program(Comm& comm) {
  const int p = comm.size();
  const int r = comm.rank();
  const int root = comm.root();

  comm.compute(1000ull * static_cast<std::uint64_t>(r + 1));

  // Zero-copy broadcast: all ranks alias one immutable payload.
  std::vector<double> payload;
  if (r == root) payload.assign(512, 1.25);
  const auto view =
      comm.bcast_shared(root, std::move(payload), 512 * sizeof(double));
  comm.compute(static_cast<std::uint64_t>((*view)[0] * 800.0));

  // Gather to root, transform, scatter back.
  auto gathered =
      comm.gather(root, static_cast<double>(r) * 0.5, sizeof(double));
  std::vector<double> parts;
  if (r == root) {
    parts = std::move(gathered);
    for (auto& v : parts) v += 1.0;
  }
  const std::vector<std::size_t> sizes(static_cast<std::size_t>(p),
                                       sizeof(double));
  const double mine = comm.scatter(root, std::move(parts), sizes);

  const double sum = comm.allreduce(
      mine, sizeof(double), [](double a, double b) { return a + b; }, 1);

  // Point-to-point between disjoint even/odd pairs: nonblocking send with
  // overlapped compute one way, rendezvous reply the other.
  const int peer = (r % 2 == 0) ? r + 1 : r - 1;
  if (peer >= 0 && peer < p) {
    if (r % 2 == 0) {
      auto req = comm.isend(peer, sum + r, sizeof(double), /*tag=*/7);
      comm.compute(5000);  // overlaps the transfer
      comm.wait(req);
      const double back = comm.recv<double>(peer, /*tag=*/9);
      comm.compute(static_cast<std::uint64_t>(back) % 97 + 1);
    } else {
      const double got = comm.recv<double>(peer, /*tag=*/7);
      comm.send(peer, got * 2.0, sizeof(double), /*tag=*/9);
    }
  }

  // Ring-shift exchange: two messages out, two in.
  std::vector<std::tuple<int, std::int64_t, std::size_t>> sends;
  sends.emplace_back((r + 1) % p, static_cast<std::int64_t>(r), 8);
  sends.emplace_back((r + p - 1) % p, static_cast<std::int64_t>(r) * 3, 8);
  const auto received = comm.exchange(std::move(sends));
  for (const auto& [src, v] : received) {
    comm.compute(static_cast<std::uint64_t>(v % 13) + 1 +
                 static_cast<std::uint64_t>(src % 3));
  }

  comm.barrier();
}

void expect_bit_identical(const RunReport& a, const RunReport& b,
                          const char* label) {
  EXPECT_EQ(a.total_time, b.total_time) << label;
  EXPECT_EQ(a.root, b.root) << label;
  ASSERT_EQ(a.ranks.size(), b.ranks.size()) << label;
  for (std::size_t r = 0; r < a.ranks.size(); ++r) {
    const auto& x = a.ranks[r];
    const auto& y = b.ranks[r];
    EXPECT_EQ(x.clock, y.clock) << label << " rank " << r;
    EXPECT_EQ(x.compute_par, y.compute_par) << label << " rank " << r;
    EXPECT_EQ(x.compute_seq, y.compute_seq) << label << " rank " << r;
    EXPECT_EQ(x.comm, y.comm) << label << " rank " << r;
    EXPECT_EQ(x.wait, y.wait) << label << " rank " << r;
    EXPECT_EQ(x.flops, y.flops) << label << " rank " << r;
    EXPECT_EQ(x.bytes_sent, y.bytes_sent) << label << " rank " << r;
    EXPECT_EQ(x.bytes_received, y.bytes_received) << label << " rank " << r;
    if (::testing::Test::HasFailure()) break;  // don't spam 192 ranks
  }
  ASSERT_EQ(a.trace.size(), b.trace.size()) << label;
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    const auto& x = a.trace[i];
    const auto& y = b.trace[i];
    EXPECT_EQ(x.rank, y.rank) << label << " event " << i;
    EXPECT_EQ(static_cast<int>(x.kind), static_cast<int>(y.kind))
        << label << " event " << i;
    EXPECT_EQ(x.begin, y.begin) << label << " event " << i;
    EXPECT_EQ(x.end, y.end) << label << " event " << i;
    EXPECT_EQ(x.amount, y.amount) << label << " event " << i;
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(EngineStressTest, ExecutorModeBitIdenticalAcrossRunsAndEngineReuse) {
  const std::size_t n = stress_ranks();
  Engine engine(stress_platform(n), stress_options(ExecMode::kBoundedExecutor));
  const auto first = engine.run(stress_program);
  EXPECT_GT(first.total_time, 0.0);
  EXPECT_EQ(first.ranks.size(), n);
  EXPECT_FALSE(first.trace.empty());

  // Same engine again: exercises the recycled collective scratch buffers.
  const auto reused = engine.run(stress_program);
  expect_bit_identical(first, reused, "engine-reuse");

  // Fresh engine: cold scratch, same report.
  Engine fresh(stress_platform(n), stress_options(ExecMode::kBoundedExecutor));
  expect_bit_identical(first, fresh.run(stress_program), "fresh-engine");
}

TEST(EngineStressTest, ExecutorMatchesThreadPerRank) {
  const std::size_t n = stress_ranks();
  Engine exec(stress_platform(n), stress_options(ExecMode::kBoundedExecutor));
  Engine threads(stress_platform(n), stress_options(ExecMode::kThreadPerRank));
  expect_bit_identical(exec.run(stress_program), threads.run(stress_program),
                       "executor-vs-threads");
}

TEST(EngineStressTest, ForcedMultiWorkerAndSmallStacksMatch) {
  const std::size_t n = stress_ranks();
  Options narrow = stress_options(ExecMode::kBoundedExecutor);
  narrow.executor_workers = 3;          // force cross-worker fiber migration
  narrow.fiber_stack_bytes = 128 << 10; // clamped floor is 64 KiB
  Engine a(stress_platform(n), stress_options(ExecMode::kBoundedExecutor));
  Engine b(stress_platform(n), narrow);
  expect_bit_identical(a.run(stress_program), b.run(stress_program),
                       "default-vs-narrow");
}

}  // namespace
}  // namespace hprs::vmpi
