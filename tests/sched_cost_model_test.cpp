#include "sched/cost_model.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "test_scenes.hpp"

namespace hprs::sched {
namespace {

JobSpec small_job(std::size_t replication = 1) {
  JobSpec spec;
  spec.id = 1;
  spec.algorithm = JobAlgorithm::kAtdca;
  spec.ranks = 2;
  spec.targets = 4;
  spec.replication = replication;
  return spec;
}

TEST(CostModelAccelTest, AcceleratorFreeEstimatesAreUntouched) {
  // The accel-aware branch must not perturb a single bit of the historic
  // arithmetic: compare against the hand-computed classic formula.
  const simnet::Platform now = simnet::fully_homogeneous();
  const hsi::HsiCube scene = testing::striped_cube(16, 16, 32, 4);
  const JobSpec spec = small_job();
  const std::vector<int> members{1, 2};

  const core::WorkloadModel model = job_workload(spec, scene);
  const double pixels = static_cast<double>(scene.pixel_count());
  const double speed_sum = now.speed(1) + now.speed(2);
  double expect = model.flops_per_pixel * pixels * 1e-6 / speed_sum +
                  model.seq_flops * 1e-6 / now.speed(1);
  double round_ms = 24.0 * 8e-6 * now.link_ms_per_mbit(1, 2);
  expect += model.sync_rounds * round_ms * 1e-3;

  const JobEstimate est = estimate_job(now, members, spec, scene);
  EXPECT_EQ(est.seconds, expect);
}

TEST(CostModelAccelTest, LaunchLatencyMakesTinyJobsPreferPlainCpus) {
  // On a tiny scene the accelerated pair's per-round launch latency
  // swamps its 40x compute advantage; on a big scene it pays off.
  const simnet::Platform p = simnet::accelerated_now(4, 4);
  const std::vector<int> cpus{0, 1};
  const std::vector<int> accels{4, 5};

  const hsi::HsiCube tiny = testing::striped_cube(8, 8, 16, 2);
  const JobSpec spec = small_job();
  EXPECT_LT(estimate_job(p, cpus, spec, tiny).seconds,
            estimate_job(p, accels, spec, tiny).seconds);

  const hsi::HsiCube big = testing::striped_cube(64, 64, 64, 4);
  const JobSpec heavy = small_job(/*replication=*/64);
  EXPECT_GT(estimate_job(p, cpus, heavy, big).seconds,
            estimate_job(p, accels, heavy, big).seconds);
}

TEST(CostModelAccelTest, RefineMembersSwapsTinyJobsOntoCpus) {
  const simnet::Platform p = simnet::accelerated_now(4, 4);
  const std::vector<int> pool{0, 1, 2, 3, 4, 5, 6, 7};

  // Best-fit picks the fastest ranks -- the accelerators (ranks 4..7).
  const hsi::HsiCube tiny = testing::striped_cube(8, 8, 16, 2);
  const JobSpec spec = small_job();
  const auto refined = refine_members(p, pool, {4, 5}, spec, tiny);
  EXPECT_EQ(refined, (std::vector<int>{0, 1}));

  // A heavy job keeps the accelerated pick.
  const hsi::HsiCube big = testing::striped_cube(64, 64, 64, 4);
  const JobSpec heavy = small_job(/*replication=*/64);
  const auto kept = refine_members(p, pool, {4, 5}, heavy, big);
  EXPECT_EQ(kept, (std::vector<int>{4, 5}));
}

TEST(CostModelAccelTest, RefineMembersIsIdentityWithoutAccelerators) {
  const simnet::Platform now = simnet::fully_heterogeneous();
  const hsi::HsiCube scene = testing::striped_cube(16, 16, 32, 4);
  const std::vector<int> pool{1, 2, 3, 4, 5};
  const std::vector<int> picked{2, 3};
  EXPECT_EQ(refine_members(now, pool, picked, small_job(), scene), picked);
}

TEST(CostModelAccelTest, RefineMembersKeepsThePickWhenCpusAreScarce) {
  // Only one plain CPU in the pool: no equally-wide CPU gang exists, so
  // the accelerated pick stands even for a tiny job.
  const simnet::Platform p = simnet::accelerated_now(1, 4);
  const hsi::HsiCube tiny = testing::striped_cube(8, 8, 16, 2);
  const auto kept =
      refine_members(p, {0, 1, 2, 3, 4}, {1, 2}, small_job(), tiny);
  EXPECT_EQ(kept, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace hprs::sched
