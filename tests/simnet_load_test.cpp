#include "simnet/load.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace hprs::simnet {
namespace {

TEST(BackgroundLoadTest, StretchesCycleTimes) {
  const Platform base = fully_homogeneous();
  std::vector<double> load(base.size(), 0.0);
  load[3] = 0.5;   // half the machine busy -> twice the cycle-time
  load[7] = 0.75;  // quarter left -> 4x
  const Platform loaded = with_background_load(base, load);
  EXPECT_DOUBLE_EQ(loaded.cycle_time(0), base.cycle_time(0));
  EXPECT_DOUBLE_EQ(loaded.cycle_time(3), 2.0 * base.cycle_time(3));
  EXPECT_DOUBLE_EQ(loaded.cycle_time(7), 4.0 * base.cycle_time(7));
}

TEST(BackgroundLoadTest, PreservesNetworkAndFabric) {
  const Platform base = thunderhead(4);
  const Platform loaded =
      with_background_load(base, std::vector<double>(4, 0.3));
  EXPECT_TRUE(loaded.switched_fabric());
  EXPECT_DOUBLE_EQ(loaded.link_ms_per_mbit(0, 1),
                   base.link_ms_per_mbit(0, 1));
  EXPECT_EQ(loaded.size(), base.size());
}

TEST(BackgroundLoadTest, ZeroLoadIsIdentityOnSpeeds) {
  const Platform base = fully_heterogeneous();
  const Platform loaded =
      with_background_load(base, std::vector<double>(base.size(), 0.0));
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.cycle_time(i), base.cycle_time(i));
  }
}

TEST(BackgroundLoadTest, ValidatesArguments) {
  const Platform base = fully_homogeneous();
  EXPECT_THROW((void)with_background_load(base, std::vector<double>(3, 0.1)),
               Error);
  std::vector<double> full(base.size(), 0.0);
  full[0] = 1.0;  // would divide by zero
  EXPECT_THROW((void)with_background_load(base, full), Error);
  full[0] = -0.1;
  EXPECT_THROW((void)with_background_load(base, full), Error);
}

TEST(LoadEpochsTest, ShapeAndRangeAreRespected) {
  const auto epochs = load_epochs(16, 5, 0.7, 9);
  ASSERT_EQ(epochs.size(), 5u);
  for (const auto& epoch : epochs) {
    ASSERT_EQ(epoch.size(), 16u);
    for (const double l : epoch) {
      ASSERT_GE(l, 0.0);
      ASSERT_LT(l, 0.7);
    }
  }
}

TEST(LoadEpochsTest, DeterministicInSeedAndVariedAcrossEpochs) {
  const auto a = load_epochs(8, 3, 0.5, 1);
  const auto b = load_epochs(8, 3, 0.5, 1);
  EXPECT_EQ(a, b);
  EXPECT_NE(a[0], a[1]);
  const auto c = load_epochs(8, 3, 0.5, 2);
  EXPECT_NE(a[0], c[0]);
}

TEST(LoadEpochsTest, RejectsInvalidMaxLoad) {
  EXPECT_THROW((void)load_epochs(4, 2, 1.0, 1), Error);
  EXPECT_THROW((void)load_epochs(4, 2, -0.5, 1), Error);
}

}  // namespace
}  // namespace hprs::simnet
