// End-to-end reproduction checks: the qualitative claims of the paper's
// evaluation section, exercised on the full pipeline (synthetic WTC scene ->
// simulated platforms -> parallel algorithms -> accuracy/timing metrics).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/runner.hpp"
#include "hsi/accuracy.hpp"
#include "hsi/metrics.hpp"
#include "hsi/scene.hpp"
#include "simnet/platform.hpp"

namespace hprs {
namespace {

/// One shared scene for the whole suite (generation is not free).
const hsi::Scene& shared_scene() {
  static const hsi::Scene scene = [] {
    hsi::SceneConfig cfg;
    cfg.rows = 96;
    cfg.cols = 96;
    return hsi::generate_wtc_scene(cfg);
  }();
  return scene;
}

double best_target_sad(const core::RunnerOutput& out, const hsi::Scene& scene,
                       char hot_spot) {
  const auto truth_px = hot_spot_pixel(scene, hot_spot);
  double best = 10.0;
  for (const auto& t : out.targets) {
    best = std::min(best, hsi::sad<float, float>(
                              truth_px, scene.cube.pixel(t.row, t.col)));
  }
  return best;
}

TEST(IntegrationTest, AtdcaDetectsAllSevenHotSpots) {
  // Table 3, Hetero-ATDCA column: every known target matched near-exactly.
  core::RunnerConfig cfg;
  cfg.algorithm = core::Algorithm::kAtdca;
  const auto out = core::run_algorithm(simnet::fully_heterogeneous(),
                                       shared_scene().cube, cfg);
  for (const auto& hs : shared_scene().truth.hot_spots) {
    EXPECT_LT(best_target_sad(out, shared_scene(), hs.label), 0.01)
        << "hot spot " << hs.label;
  }
}

TEST(IntegrationTest, UfclsMissesTheCoolestHotSpot) {
  // Table 3, Hetero-UFCLS column: the 700 F target 'F' is the one the
  // paper highlights as missed.
  core::RunnerConfig cfg;
  cfg.algorithm = core::Algorithm::kUfcls;
  const auto out = core::run_algorithm(simnet::fully_heterogeneous(),
                                       shared_scene().cube, cfg);
  EXPECT_GT(best_target_sad(out, shared_scene(), 'F'), 0.02);
  // The hottest spot is always found.
  EXPECT_LT(best_target_sad(out, shared_scene(), 'G'), 0.01);
}

TEST(IntegrationTest, MorphBeatsPctOnEveryDebrisClass) {
  // Table 4's shape: the spatial/spectral classifier dominates.
  core::RunnerConfig cfg;
  cfg.classes = 14;
  cfg.algorithm = core::Algorithm::kPct;
  const auto pct = core::run_algorithm(simnet::fully_heterogeneous(),
                                       shared_scene().cube, cfg);
  cfg.algorithm = core::Algorithm::kMorph;
  const auto morph = core::run_algorithm(simnet::fully_heterogeneous(),
                                         shared_scene().cube, cfg);
  const auto debris = hsi::debris_materials();
  const auto s_pct = hsi::score_classification(pct.labels, pct.label_count,
                                               shared_scene().truth, debris);
  const auto s_morph = hsi::score_classification(
      morph.labels, morph.label_count, shared_scene().truth, debris);
  EXPECT_GT(s_morph.overall_pct, 93.0);  // the paper's headline number
  EXPECT_GT(s_pct.overall_pct, 60.0);
  EXPECT_GT(s_morph.overall_pct, s_pct.overall_pct);
  for (std::size_t k = 0; k < debris.size(); ++k) {
    EXPECT_GE(s_morph.per_class_pct[k] + 1e-9, s_pct.per_class_pct[k])
        << to_string(debris[k]);
  }
}

TEST(IntegrationTest, HeterogeneousAlgorithmsAdaptAcrossNetworks) {
  // Table 5's shape: Hetero-X is nearly flat across the four networks,
  // while Homo-X collapses wherever processors are heterogeneous.
  core::RunnerConfig cfg;
  cfg.algorithm = core::Algorithm::kAtdca;
  cfg.targets = 8;
  cfg.replication = 32;

  const auto platforms = {
      simnet::fully_heterogeneous(), simnet::fully_homogeneous(),
      simnet::partially_heterogeneous(), simnet::partially_homogeneous()};

  std::vector<double> hetero_times;
  std::vector<double> homo_times;
  for (const auto& platform : platforms) {
    cfg.policy = core::PartitionPolicy::kHeterogeneous;
    hetero_times.push_back(
        core::run_algorithm(platform, shared_scene().cube, cfg)
            .report.total_time);
    cfg.policy = core::PartitionPolicy::kHomogeneous;
    homo_times.push_back(
        core::run_algorithm(platform, shared_scene().cube, cfg)
            .report.total_time);
  }

  // Hetero spread across networks stays within ~2x.
  const auto [het_lo, het_hi] =
      std::minmax_element(hetero_times.begin(), hetero_times.end());
  EXPECT_LT(*het_hi / *het_lo, 2.0);
  // Homo collapses on the processor-heterogeneous networks (index 0, 2).
  EXPECT_GT(homo_times[0] / hetero_times[0], 2.5);
  EXPECT_GT(homo_times[2] / hetero_times[2], 2.5);
  // On the fully homogeneous network the two versions coincide (the paper
  // reports homo slightly ahead; our WEA degenerates to the same split).
  EXPECT_NEAR(homo_times[1] / hetero_times[1], 1.0, 0.05);
}

TEST(IntegrationTest, HeteroLoadBalanceIsNearPerfect) {
  // Table 7's shape: D_all close to 1 for the heterogeneous versions,
  // clearly worse for the homogeneous versions on heterogeneous hardware.
  core::RunnerConfig cfg;
  cfg.algorithm = core::Algorithm::kMorph;
  cfg.classes = 7;
  cfg.morph_iterations = 2;
  cfg.replication = 32;
  cfg.policy = core::PartitionPolicy::kHeterogeneous;
  const auto het = core::run_algorithm(simnet::fully_heterogeneous(),
                                       shared_scene().cube, cfg);
  cfg.policy = core::PartitionPolicy::kHomogeneous;
  const auto homo = core::run_algorithm(simnet::fully_heterogeneous(),
                                        shared_scene().cube, cfg);
  EXPECT_LT(het.report.imbalance_all(), 1.6);
  EXPECT_GT(homo.report.imbalance_all(), 3.0);
}

TEST(IntegrationTest, ThunderheadScalingIsMonotoneAndOrdered) {
  // Table 8 / Fig. 2's shape: times fall with processor count and PCT
  // scales worst (its sequential eigendecomposition).
  core::RunnerConfig cfg;
  cfg.replication = 32;
  cfg.targets = 8;
  cfg.classes = 7;
  cfg.morph_iterations = 2;

  const auto time_at = [&](core::Algorithm alg, std::size_t p) {
    cfg.algorithm = alg;
    return core::run_algorithm(simnet::thunderhead(p), shared_scene().cube,
                               cfg)
        .report.total_time;
  };

  for (const auto alg : {core::Algorithm::kAtdca, core::Algorithm::kPct,
                         core::Algorithm::kMorph}) {
    const double t1 = time_at(alg, 1);
    const double t4 = time_at(alg, 4);
    const double t16 = time_at(alg, 16);
    EXPECT_GT(t1, t4);
    EXPECT_GT(t4, t16);
  }

  // At 64 nodes the PCT speedup lags the MORPH speedup.
  const double pct_speedup = time_at(core::Algorithm::kPct, 1) /
                             time_at(core::Algorithm::kPct, 64);
  const double morph_speedup = time_at(core::Algorithm::kMorph, 1) /
                               time_at(core::Algorithm::kMorph, 64);
  EXPECT_GT(morph_speedup, pct_speedup);
}

TEST(IntegrationTest, RepeatedRunsAreBitIdentical) {
  core::RunnerConfig cfg;
  cfg.algorithm = core::Algorithm::kAtdca;
  cfg.targets = 6;
  const auto a = core::run_algorithm(simnet::fully_heterogeneous(),
                                     shared_scene().cube, cfg);
  const auto b = core::run_algorithm(simnet::fully_heterogeneous(),
                                     shared_scene().cube, cfg);
  EXPECT_EQ(a.report.total_time, b.report.total_time);
  EXPECT_EQ(a.targets, b.targets);
}

}  // namespace
}  // namespace hprs
