#include "vmpi/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/error.hpp"
#include "vmpi/comm.hpp"

namespace hprs::vmpi {
namespace {

/// Uniform test platform: n processors with cycle-time w on one segment
/// with `link` ms/megabit.
simnet::Platform uniform_platform(std::size_t n, double w = 0.001,
                                  double link = 10.0) {
  std::vector<simnet::ProcessorSpec> procs;
  for (std::size_t i = 0; i < n; ++i) {
    procs.push_back(
        simnet::ProcessorSpec{"p" + std::to_string(i), "test", w, 1024, 512, 0});
  }
  return simnet::Platform("uniform-test", std::move(procs), {{link}});
}

Options zero_latency() {
  Options o;
  o.per_message_latency_s = 0.0;
  o.deadlock_timeout_s = 5.0;
  return o;
}

TEST(EngineTest, ComputeChargesFlopsTimesCycleTime) {
  Engine engine(uniform_platform(2, 0.004), zero_latency());
  const auto report = engine.run([](Comm& comm) {
    if (comm.rank() == 0) comm.compute(1'000'000);  // 1 Mflop
  });
  EXPECT_DOUBLE_EQ(report.ranks[0].clock, 0.004);
  EXPECT_DOUBLE_EQ(report.ranks[1].clock, 0.0);
  EXPECT_DOUBLE_EQ(report.total_time, 0.004);
  EXPECT_EQ(report.ranks[0].flops, 1'000'000u);
}

TEST(EngineTest, HeterogeneousCycleTimesDiffer) {
  std::vector<simnet::ProcessorSpec> procs = {
      {"fast", "t", 0.001, 1024, 512, 0},
      {"slow", "t", 0.010, 1024, 512, 0},
  };
  Engine engine(simnet::Platform("het", std::move(procs), {{10.0}}),
                zero_latency());
  const auto report = engine.run([](Comm& comm) { comm.compute(2'000'000); });
  EXPECT_DOUBLE_EQ(report.ranks[0].clock, 0.002);
  EXPECT_DOUBLE_EQ(report.ranks[1].clock, 0.020);
  EXPECT_DOUBLE_EQ(report.total_time, 0.020);
}

TEST(EngineTest, SequentialPhaseGoesToSeqBucket) {
  Engine engine(uniform_platform(2, 0.001), zero_latency());
  const auto report = engine.run([](Comm& comm) {
    if (comm.is_root()) {
      comm.compute(1'000'000, Phase::kSequential);
      comm.compute(3'000'000, Phase::kParallel);
    }
  });
  EXPECT_DOUBLE_EQ(report.ranks[0].compute_seq, 0.001);
  EXPECT_DOUBLE_EQ(report.ranks[0].compute_par, 0.003);
  EXPECT_DOUBLE_EQ(report.seq(), 0.001);
}

TEST(EngineTest, BarrierAlignsClocks) {
  Engine engine(uniform_platform(3, 0.001), zero_latency());
  const auto report = engine.run([](Comm& comm) {
    comm.compute(static_cast<std::uint64_t>(comm.rank() + 1) * 1'000'000);
    comm.barrier();
  });
  for (const auto& r : report.ranks) {
    EXPECT_DOUBLE_EQ(r.clock, 0.003);  // slowest rank had 3 Mflop
  }
  // Rank 0 idled 2 ms, rank 1 idled 1 ms at the barrier.
  EXPECT_NEAR(report.ranks[0].wait, 0.002, 1e-12);
  EXPECT_NEAR(report.ranks[1].wait, 0.001, 1e-12);
  EXPECT_NEAR(report.ranks[2].wait, 0.0, 1e-12);
}

TEST(EngineTest, PointToPointTimingIsRendezvous) {
  Engine engine(uniform_platform(2), zero_latency());
  constexpr std::size_t kBytes = 125'000;  // 1 megabit -> 10 ms at c=10
  const auto report = engine.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, std::vector<int>{1, 2, 3}, kBytes);
    } else {
      const auto v = comm.recv<std::vector<int>>(0);
      EXPECT_EQ(v.size(), 3u);
    }
  });
  EXPECT_NEAR(report.ranks[0].clock, 0.010, 1e-12);
  EXPECT_NEAR(report.ranks[1].clock, 0.010, 1e-12);
  EXPECT_EQ(report.ranks[0].bytes_sent, kBytes);
  EXPECT_EQ(report.ranks[1].bytes_received, kBytes);
}

TEST(EngineTest, LateReceiverDelaysTransfer) {
  Engine engine(uniform_platform(2), zero_latency());
  constexpr std::size_t kBytes = 125'000;  // 10 ms of wire time
  const auto report = engine.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, kBytes);
    } else {
      comm.compute(25'000'000);  // busy until t = 25 ms
      (void)comm.recv<int>(0);
    }
  });
  // Transfer starts when the receiver posts at 25 ms, ends at 35 ms.
  EXPECT_NEAR(report.ranks[1].clock, 0.035, 1e-9);
  EXPECT_NEAR(report.ranks[0].clock, 0.035, 1e-9);
}

TEST(EngineTest, MessagesBetweenSameEndpointsAreFifo) {
  Engine engine(uniform_platform(2), zero_latency());
  engine.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, 8);
      comm.send(1, 2, 8);
      comm.send(1, 3, 8);
    } else {
      EXPECT_EQ(comm.recv<int>(0), 1);
      EXPECT_EQ(comm.recv<int>(0), 2);
      EXPECT_EQ(comm.recv<int>(0), 3);
    }
  });
}

TEST(EngineTest, TagsAndSourcesSelectMessages) {
  // Sends are rendezvous (synchronous), so out-of-order matching is
  // exercised with two independent senders posting different tags.
  Engine engine(uniform_platform(3), zero_latency());
  engine.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(2, std::string("from0"), 8, /*tag=*/5);
    } else if (comm.rank() == 1) {
      comm.send(2, std::string("from1"), 8, /*tag=*/6);
    } else {
      // Receive in the opposite order of the sender ranks.
      EXPECT_EQ(comm.recv<std::string>(1, 6), "from1");
      EXPECT_EQ(comm.recv<std::string>(0, 5), "from0");
    }
  });
}

TEST(EngineTest, RankExceptionPropagatesAndUnblocksPeers) {
  Engine engine(uniform_platform(4), zero_latency());
  EXPECT_THROW(engine.run([](Comm& comm) {
                 if (comm.rank() == 2) {
                   throw std::runtime_error("boom");
                 }
                 comm.barrier();  // peers must not hang
               }),
               std::runtime_error);
}

TEST(EngineTest, RecvWithNoSenderTimesOutAsDeadlock) {
  Options opts = zero_latency();
  opts.deadlock_timeout_s = 0.2;
  Engine engine(uniform_platform(2), opts);
  EXPECT_THROW(engine.run([](Comm& comm) {
                 if (comm.rank() == 1) {
                   (void)comm.recv<int>(0);  // never sent
                 }
               }),
               Error);
}

TEST(EngineTest, MismatchedCollectivesPoisonTheRun) {
  Engine engine(uniform_platform(2), zero_latency());
  EXPECT_THROW(engine.run([](Comm& comm) {
                 if (comm.rank() == 0) {
                   comm.barrier();
                 } else {
                   (void)comm.gather(0, 1, 8);
                 }
               }),
               Error);
}

TEST(EngineTest, InvalidPeerRanksAreRejected) {
  Engine engine(uniform_platform(2), zero_latency());
  EXPECT_THROW(engine.run([](Comm& comm) {
                 if (comm.rank() == 0) comm.send(5, 1, 8);
               }),
               Error);
  EXPECT_THROW(engine.run([](Comm& comm) {
                 if (comm.rank() == 0) comm.send(0, 1, 8);
               }),
               Error);
}

TEST(EngineTest, SingleRankCollectivesAreTrivial) {
  Engine engine(uniform_platform(1), zero_latency());
  const auto report = engine.run([](Comm& comm) {
    comm.barrier();
    const int v = comm.bcast(0, 42, 1024);
    EXPECT_EQ(v, 42);
    const auto g = comm.gather(0, v, 1024);
    ASSERT_EQ(g.size(), 1u);
    EXPECT_EQ(g[0], 42);
    const int s = comm.scatter(0, std::vector<int>{7}, {1024});
    EXPECT_EQ(s, 7);
  });
  EXPECT_DOUBLE_EQ(report.total_time, 0.0);
}

TEST(EngineTest, EngineCanRunMultiplePrograms) {
  Engine engine(uniform_platform(2), zero_latency());
  const auto a = engine.run([](Comm& comm) { comm.compute(1'000'000); });
  const auto b = engine.run([](Comm& comm) { comm.compute(2'000'000); });
  EXPECT_DOUBLE_EQ(a.total_time, 0.001);
  EXPECT_DOUBLE_EQ(b.total_time, 0.002);  // state fully reset between runs
}

TEST(EngineTest, RootOptionControlsReportDecomposition) {
  Options opts = zero_latency();
  opts.root = 1;
  Engine engine(uniform_platform(2), opts);
  const auto report = engine.run([](Comm& comm) {
    EXPECT_EQ(comm.root(), 1);
    EXPECT_EQ(comm.is_root(), comm.rank() == 1);
    if (comm.is_root()) comm.compute(1'000'000, Phase::kSequential);
  });
  EXPECT_EQ(report.root, 1);
  EXPECT_DOUBLE_EQ(report.seq(), 0.001);
}

TEST(EngineTest, RejectsInvalidOptions) {
  Options bad_root;
  bad_root.root = 7;
  EXPECT_THROW(Engine(uniform_platform(2), bad_root), Error);
  Options bad_latency;
  bad_latency.per_message_latency_s = -1.0;
  EXPECT_THROW(Engine(uniform_platform(2), bad_latency), Error);
}

TEST(EngineTest, ImbalanceMetricsFollowBusyTime) {
  Engine engine(uniform_platform(3, 0.001), zero_latency());
  const auto report = engine.run([](Comm& comm) {
    if (comm.rank() == 0) comm.compute(4'000'000);
    if (comm.rank() == 1) comm.compute(2'000'000);
    if (comm.rank() == 2) comm.compute(2'000'000);
  });
  EXPECT_DOUBLE_EQ(report.imbalance_all(), 2.0);
  EXPECT_DOUBLE_EQ(report.imbalance_minus_root(), 1.0);
}

TEST(EngineTest, TimeDecompositionCoversTheRun) {
  Engine engine(uniform_platform(4, 0.001), zero_latency());
  const auto report = engine.run([](Comm& comm) {
    auto part = comm.scatter(comm.root(),
                             comm.is_root() ? std::vector<int>{0, 1, 2, 3}
                                            : std::vector<int>{},
                             std::vector<std::size_t>(4, 125'000));
    comm.compute(5'000'000);
    (void)comm.gather(comm.root(), part, 125'000);
    if (comm.is_root()) comm.compute(1'000'000, Phase::kSequential);
  });
  EXPECT_GT(report.com(), 0.0);
  EXPECT_DOUBLE_EQ(report.seq(), 0.001);
  EXPECT_GT(report.par(), 0.0);
  EXPECT_NEAR(report.com() + report.seq() + report.par(), report.total_time,
              1e-9);
  EXPECT_GT(report.total_bytes_moved(), 0u);
  EXPECT_EQ(report.total_flops(), 4u * 5'000'000u + 1'000'000u);
}

TEST(EngineTest, RunsAreBitDeterministic) {
  // Drive a nontrivial mixed workload twice on a heterogeneous platform
  // and require identical virtual results, regardless of host scheduling.
  const simnet::Platform platform = simnet::fully_heterogeneous();
  const auto program = [](Comm& comm) {
    for (int iter = 0; iter < 5; ++iter) {
      comm.compute(
          static_cast<std::uint64_t>((comm.rank() * 37 + iter * 11) % 7 + 1) *
          100'000);
      const auto all =
          comm.gather(comm.root(), comm.rank() * iter, 24);
      int token = comm.is_root() ? static_cast<int>(all.size()) : 0;
      token = comm.bcast(comm.root(), token, 4096);
      EXPECT_EQ(token, comm.size());
    }
  };
  Engine a(platform);
  Engine b(platform);
  const auto ra = a.run(program);
  const auto rb = b.run(program);
  ASSERT_EQ(ra.ranks.size(), rb.ranks.size());
  EXPECT_EQ(ra.total_time, rb.total_time);
  for (std::size_t i = 0; i < ra.ranks.size(); ++i) {
    EXPECT_EQ(ra.ranks[i].clock, rb.ranks[i].clock) << "rank " << i;
    EXPECT_EQ(ra.ranks[i].comm, rb.ranks[i].comm) << "rank " << i;
    EXPECT_EQ(ra.ranks[i].wait, rb.ranks[i].wait) << "rank " << i;
    EXPECT_EQ(ra.ranks[i].compute_par, rb.ranks[i].compute_par);
    EXPECT_EQ(ra.ranks[i].bytes_sent, rb.ranks[i].bytes_sent);
  }
}


TEST(EngineTest, IsendOverlapsComputeWithTheTransfer) {
  Engine engine(uniform_platform(2), zero_latency());
  constexpr std::size_t kBytes = 125'000;  // 10 ms of wire time
  const auto report = engine.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      auto req = comm.isend(1, 7, kBytes);
      comm.compute(8'000'000);  // 8 ms of compute during the transfer
      comm.wait(req);
      // Transfer ran [0, 10ms]; compute [0, 8ms]; wait lands at 10 ms, not
      // 18 ms as a blocking send-then-compute would.
      EXPECT_NEAR(comm.now(), 0.010, 1e-9);
    } else {
      EXPECT_EQ(comm.recv<int>(0), 7);
    }
  });
  EXPECT_NEAR(report.total_time, 0.010, 1e-9);
}

TEST(EngineTest, WaitNeverMovesTheClockBackwards) {
  Engine engine(uniform_platform(2), zero_latency());
  const auto report = engine.run([](Comm& comm) {
    if (comm.rank() == 0) {
      auto req = comm.isend(1, 1, 125'000);
      comm.compute(50'000'000);  // 50 ms >> the 10 ms transfer
      comm.wait(req);
      EXPECT_NEAR(comm.now(), 0.050, 1e-9);
    } else {
      (void)comm.recv<int>(0);
    }
  });
  EXPECT_NEAR(report.ranks[0].clock, 0.050, 1e-9);
}

TEST(EngineTest, MultipleOutstandingIsendsCompleteInOrder) {
  Engine engine(uniform_platform(3), zero_latency());
  engine.run([](Comm& comm) {
    if (comm.rank() == 0) {
      auto r1 = comm.isend(1, 11, 8);
      auto r2 = comm.isend(2, 22, 8);
      comm.wait(r2);
      comm.wait(r1);
    } else if (comm.rank() == 1) {
      EXPECT_EQ(comm.recv<int>(0), 11);
    } else {
      EXPECT_EQ(comm.recv<int>(0), 22);
    }
  });
}

TEST(EngineTest, DoubleWaitIsAnError) {
  Engine engine(uniform_platform(2), zero_latency());
  EXPECT_THROW(engine.run([](Comm& comm) {
                 if (comm.rank() == 0) {
                   auto req = comm.isend(1, 1, 8);
                   comm.wait(req);
                   comm.wait(req);  // handle already retired
                 } else {
                   (void)comm.recv<int>(0);
                 }
               }),
               Error);
}

TEST(EngineTest, WaitOnDefaultRequestIsRejected) {
  Engine engine(uniform_platform(2), zero_latency());
  EXPECT_THROW(engine.run([](Comm& comm) {
                 if (comm.rank() == 0) {
                   Comm::Request req;
                   comm.wait(req);
                 }
               }),
               Error);
}

TEST(EngineTest, UnmatchedIsendWaitTimesOut) {
  Options opts = zero_latency();
  opts.deadlock_timeout_s = 0.2;
  Engine engine(uniform_platform(2), opts);
  EXPECT_THROW(engine.run([](Comm& comm) {
                 if (comm.rank() == 0) {
                   auto req = comm.isend(1, 1, 8);
                   comm.wait(req);  // rank 1 never receives
                 }
               }),
               Error);
}

class EngineSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EngineSizeSweep, GatherDeliversAllRanksInOrder) {
  Engine engine(uniform_platform(GetParam()), zero_latency());
  engine.run([](Comm& comm) {
    const auto all = comm.gather(comm.root(), comm.rank() * 10, 16);
    if (comm.is_root()) {
      ASSERT_EQ(all.size(), static_cast<std::size_t>(comm.size()));
      for (int i = 0; i < comm.size(); ++i) {
        EXPECT_EQ(all[static_cast<std::size_t>(i)], i * 10);
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(EngineSizeSweep, ScatterDeliversPerRankParts) {
  Engine engine(uniform_platform(GetParam()), zero_latency());
  engine.run([](Comm& comm) {
    std::vector<int> parts;
    std::vector<std::size_t> bytes;
    if (comm.is_root()) {
      for (int i = 0; i < comm.size(); ++i) {
        parts.push_back(i * 3);
        bytes.push_back(8);
      }
    } else {
      bytes.assign(static_cast<std::size_t>(comm.size()), 8);
    }
    const int mine = comm.scatter(comm.root(), std::move(parts), bytes);
    EXPECT_EQ(mine, comm.rank() * 3);
  });
}

TEST_P(EngineSizeSweep, BcastDeliversRootValueEverywhere) {
  Engine engine(uniform_platform(GetParam()), zero_latency());
  engine.run([](Comm& comm) {
    const std::string v = comm.bcast(
        comm.root(),
        comm.is_root() ? std::string("payload") : std::string(), 64);
    EXPECT_EQ(v, "payload");
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, EngineSizeSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 32));

}  // namespace
}  // namespace hprs::vmpi
