// The Chrome trace-event exporter (obs/chrome_trace.hpp):
//
//  * well-formedness -- the document is one JSON object with balanced
//    braces/brackets and correctly quoted strings (checked by a small
//    structural scanner, since the repo carries no JSON parser);
//  * agreement -- the virtual timeline carries exactly one "X" event per
//    TraceEvent, matching the data-line count of trace_csv on the same
//    report;
//  * composition -- host spans add a second process, fault-log entries
//    become "i" instants, and a fixed report renders byte-identically.
#include "obs/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "vmpi/comm.hpp"
#include "vmpi/engine.hpp"
#include "vmpi/trace.hpp"

namespace hprs::obs {
namespace {

/// Structural JSON check: quotes pair up (honouring backslash escapes) and
/// braces/brackets balance outside strings, never dipping negative.
bool json_shape_ok(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string && !escaped;
}

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

simnet::Platform tiny_platform(std::size_t n) {
  std::vector<simnet::ProcessorSpec> procs;
  for (std::size_t i = 0; i < n; ++i) {
    procs.push_back(
        simnet::ProcessorSpec{"p" + std::to_string(i), "t", 0.001, 64, 64, 0});
  }
  return simnet::Platform("tiny", std::move(procs), {{10.0}});
}

vmpi::RunReport traced_report() {
  vmpi::Options options;
  options.enable_trace = true;
  vmpi::Engine engine(tiny_platform(3), options);
  return engine.run([](vmpi::Comm& comm) {
    comm.compute(static_cast<std::uint64_t>(comm.rank() + 1) * 500'000);
    (void)comm.gather(0, comm.rank(), 4'000);
    comm.barrier();
  });
}

TEST(ChromeTraceTest, DocumentIsStructurallyValidJson) {
  const auto report = traced_report();
  const std::string json = chrome_trace_json(report);
  EXPECT_TRUE(json_shape_ok(json));
  EXPECT_EQ(json.rfind("{\n", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
}

TEST(ChromeTraceTest, OneCompleteEventPerTraceEventMatchingTraceCsv) {
  const auto report = traced_report();
  ASSERT_FALSE(report.trace.empty());
  const std::string json = chrome_trace_json(report);

  const std::size_t x_events = count_occurrences(json, "\"ph\":\"X\"");
  EXPECT_EQ(x_events, report.trace.size());

  // trace_csv emits a header line plus one line per event; the two exports
  // must agree on the event count.
  const std::string csv = vmpi::trace_csv(report);
  const auto csv_lines =
      static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(x_events, csv_lines - 1);
}

TEST(ChromeTraceTest, NamesEveryRankThreadOnTheVirtualProcess) {
  const auto report = traced_report();
  const std::string json = chrome_trace_json(report);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"thread_name\""),
            report.ranks.size());
  EXPECT_NE(json.find("\"name\":\"rank 0 (root)\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rank 2\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"vmpi virtual time\""), std::string::npos);
  // No host spans supplied: the host process must not appear.
  EXPECT_EQ(json.find("\"name\":\"host time\""), std::string::npos);
}

TEST(ChromeTraceTest, HostSpansAddASecondProcess) {
  const auto report = traced_report();
  const std::vector<HostSpan> spans = {
      {"vmpi.engine.run", 0, 10, 500},
      {"vmpi.engine.ranks", 1, 20, 400},
  };
  const std::string json = chrome_trace_json(report, spans);
  EXPECT_TRUE(json_shape_ok(json));
  EXPECT_NE(json.find("\"name\":\"host time\""), std::string::npos);
  EXPECT_NE(json.find("\"vmpi.engine.run\""), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"cat\":\"host\""), spans.size());
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""),
            report.trace.size() + spans.size());
}

TEST(ChromeTraceTest, FaultEventsBecomeInstants) {
  vmpi::RunReport report;
  report.total_time = 1.0;
  report.ranks.resize(2);
  report.trace.push_back({0, vmpi::TraceKind::kCompute, 0.0, 0.5, 100});
  vmpi::FaultEvent crash;
  crash.kind = vmpi::FaultEventKind::kCrash;
  crash.rank = 1;
  crash.time_s = 0.25;
  report.fault_events.push_back(crash);

  const std::string json = chrome_trace_json(report);
  EXPECT_TRUE(json_shape_ok(json));
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"i\""), 1u);
  EXPECT_NE(json.find("\"cat\":\"fault\""), std::string::npos);
}

TEST(ChromeTraceTest, TrackGroupsRehomeWindowedRankActivity) {
  const auto report = traced_report();
  ASSERT_FALSE(report.trace.empty());
  std::vector<TraceTrackGroup> groups;
  groups.push_back(
      {"job:1/ATDCA", {1, 2}, 0.0, report.total_time + 1.0, {}});
  const std::string json = chrome_trace_json(report, groups, {});
  EXPECT_TRUE(json_shape_ok(json));
  EXPECT_NE(json.find("\"name\":\"job:1/ATDCA\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"rank 1 (leader)\""), std::string::npos);

  // The whole run is inside the window: every event of members {1,2} moves
  // to the group's process (pid 2); rank 0 stays on the shared timeline.
  std::size_t member_events = 0;
  std::size_t other_events = 0;
  for (const auto& ev : report.trace) {
    (ev.rank == 0 ? other_events : member_events)++;
  }
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\",\"pid\":2"), member_events);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\",\"pid\":0"), other_events);

  // An empty window re-homes nothing...
  groups[0].end_s = 0.0;
  const std::string empty_window = chrome_trace_json(report, groups, {});
  EXPECT_EQ(count_occurrences(empty_window, "\"ph\":\"X\",\"pid\":0"),
            report.trace.size());
  // ...and an empty group list matches the plain overload byte for byte.
  EXPECT_EQ(chrome_trace_json(report, std::vector<TraceTrackGroup>{}, {}),
            chrome_trace_json(report));
}

TEST(ChromeTraceTest, DeterministicForAFixedReport) {
  const auto report = traced_report();
  const std::vector<HostSpan> spans = {{"section", 0, 1, 2}};
  EXPECT_EQ(chrome_trace_json(report, spans),
            chrome_trace_json(report, spans));
}

}  // namespace
}  // namespace hprs::obs
