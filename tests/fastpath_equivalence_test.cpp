// End-to-end equivalence of the kernel fast paths: every algorithm is run
// twice on the same scene and platform -- once forcing the scalar reference
// kernels, once on the blocked fast paths -- and must produce identical
// scientific outputs AND an identical virtual-time report.  The virtual
// clock is the repo's headline product (the paper's tables), so this is the
// test that guarantees the host-side optimization cannot perturb it, even
// through data-dependent charges (UFCLS active-set iteration counts, PCT
// Jacobi sweeps).
#include <gtest/gtest.h>

#include <cstddef>

#include "core/runner.hpp"
#include "hsi/scene.hpp"
#include "linalg/kernels.hpp"
#include "linalg/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "simnet/platform.hpp"
#include "vmpi/engine.hpp"

namespace hprs {
namespace {

hsi::Scene small_scene() {
  hsi::SceneConfig cfg;
  cfg.rows = 24;
  cfg.cols = 24;
  cfg.bands = 48;
  cfg.seed = 20010916;
  return hsi::generate_wtc_scene(cfg);
}

core::RunnerConfig config_for(core::Algorithm alg) {
  core::RunnerConfig cfg;
  cfg.algorithm = alg;
  cfg.targets = 6;
  cfg.classes = 5;
  cfg.morph_iterations = 3;
  cfg.kernel_radius = 2;
  return cfg;
}

class FastPathEquivalenceTest
    : public ::testing::TestWithParam<core::Algorithm> {};

INSTANTIATE_TEST_SUITE_P(Algorithms, FastPathEquivalenceTest,
                         ::testing::Values(core::Algorithm::kAtdca,
                                           core::Algorithm::kUfcls,
                                           core::Algorithm::kPct,
                                           core::Algorithm::kMorph),
                         [](const auto& param_info) {
                           return core::to_string(param_info.param);
                         });

TEST_P(FastPathEquivalenceTest, OutputsAndVirtualTimeIdentical) {
  const hsi::Scene scene = small_scene();
  const simnet::Platform platform = simnet::fully_heterogeneous();
  const core::RunnerConfig cfg = config_for(GetParam());

  core::RunnerOutput ref;
  core::RunnerOutput fast;
  {
    const linalg::ScopedKernelPath path(true);
    ref = core::run_algorithm(platform, scene.cube, cfg);
  }
  {
    const linalg::ScopedKernelPath path(false);
    fast = core::run_algorithm(platform, scene.cube, cfg);
  }

  // Scientific outputs: identical target lists / label images.
  ASSERT_EQ(ref.targets.size(), fast.targets.size());
  for (std::size_t i = 0; i < ref.targets.size(); ++i) {
    EXPECT_EQ(ref.targets[i].row, fast.targets[i].row) << "target " << i;
    EXPECT_EQ(ref.targets[i].col, fast.targets[i].col) << "target " << i;
  }
  ASSERT_EQ(ref.labels.size(), fast.labels.size());
  for (std::size_t i = 0; i < ref.labels.size(); ++i) {
    ASSERT_EQ(ref.labels[i], fast.labels[i]) << "label " << i;
  }
  EXPECT_EQ(ref.label_count, fast.label_count);

  // Virtual-time model: the fast path must charge exactly what the
  // reference charges, down to the last bit of every rank's clocks.
  EXPECT_EQ(ref.report.total_time, fast.report.total_time);
  ASSERT_EQ(ref.report.ranks.size(), fast.report.ranks.size());
  for (std::size_t r = 0; r < ref.report.ranks.size(); ++r) {
    const auto& a = ref.report.ranks[r];
    const auto& b = fast.report.ranks[r];
    EXPECT_EQ(a.clock, b.clock) << "rank " << r;
    EXPECT_EQ(a.compute_par, b.compute_par) << "rank " << r;
    EXPECT_EQ(a.compute_seq, b.compute_seq) << "rank " << r;
    EXPECT_EQ(a.comm, b.comm) << "rank " << r;
    EXPECT_EQ(a.wait, b.wait) << "rank " << r;
    EXPECT_EQ(a.flops, b.flops) << "rank " << r;
    EXPECT_EQ(a.bytes_sent, b.bytes_sent) << "rank " << r;
    EXPECT_EQ(a.bytes_received, b.bytes_received) << "rank " << r;
  }
}

TEST_P(FastPathEquivalenceTest, ThreadCountCannotPerturbAnything) {
  // The threaded kernels' determinism contract: at 2, 4, and 7 worker
  // threads the fast path must reproduce the single-thread run bit for bit
  // -- scientific outputs and every rank's virtual clocks.
  const hsi::Scene scene = small_scene();
  const simnet::Platform platform = simnet::fully_heterogeneous();
  const core::RunnerConfig cfg = config_for(GetParam());

  const linalg::ScopedKernelPath path(false);
  core::RunnerOutput one;
  {
    const linalg::ScopedKernelThreads threads(1);
    one = core::run_algorithm(platform, scene.cube, cfg);
  }
  for (const std::size_t n : {2u, 4u, 7u}) {
    const linalg::ScopedKernelThreads threads(n);
    const core::RunnerOutput out =
        core::run_algorithm(platform, scene.cube, cfg);
    ASSERT_EQ(one.targets.size(), out.targets.size()) << n << " threads";
    for (std::size_t i = 0; i < one.targets.size(); ++i) {
      EXPECT_EQ(one.targets[i].row, out.targets[i].row)
          << n << " threads, target " << i;
      EXPECT_EQ(one.targets[i].col, out.targets[i].col)
          << n << " threads, target " << i;
    }
    ASSERT_EQ(one.labels.size(), out.labels.size()) << n << " threads";
    for (std::size_t i = 0; i < one.labels.size(); ++i) {
      ASSERT_EQ(one.labels[i], out.labels[i])
          << n << " threads, label " << i;
    }
    EXPECT_EQ(one.label_count, out.label_count) << n << " threads";
    EXPECT_EQ(one.report.total_time, out.report.total_time)
        << n << " threads";
    ASSERT_EQ(one.report.ranks.size(), out.report.ranks.size());
    for (std::size_t r = 0; r < one.report.ranks.size(); ++r) {
      const auto& a = one.report.ranks[r];
      const auto& b = out.report.ranks[r];
      EXPECT_EQ(a.clock, b.clock) << n << " threads, rank " << r;
      EXPECT_EQ(a.flops, b.flops) << n << " threads, rank " << r;
    }
  }
}

TEST(FastPathEquivalenceTest, AcceleratedPlatformAlsoIdentical) {
  // Fast-vs-reference equivalence must also hold where accelerated ranks
  // charge staging: the host-side kernel path cannot leak into the
  // virtual staging charges.
  const hsi::Scene scene = small_scene();
  const simnet::Platform platform = simnet::accelerated_now(12, 4);
  const core::RunnerConfig cfg = config_for(core::Algorithm::kAtdca);

  core::RunnerOutput ref;
  core::RunnerOutput fast;
  {
    const linalg::ScopedKernelPath path(true);
    ref = core::run_algorithm(platform, scene.cube, cfg);
  }
  {
    const linalg::ScopedKernelPath path(false);
    fast = core::run_algorithm(platform, scene.cube, cfg);
  }
  EXPECT_EQ(ref.report.total_time, fast.report.total_time);
  ASSERT_EQ(ref.report.ranks.size(), fast.report.ranks.size());
  for (std::size_t r = 0; r < ref.report.ranks.size(); ++r) {
    EXPECT_EQ(ref.report.ranks[r].clock, fast.report.ranks[r].clock)
        << "rank " << r;
    EXPECT_EQ(ref.report.ranks[r].comm, fast.report.ranks[r].comm)
        << "rank " << r;
  }
  ASSERT_EQ(ref.targets.size(), fast.targets.size());
  for (std::size_t i = 0; i < ref.targets.size(); ++i) {
    EXPECT_EQ(ref.targets[i].row, fast.targets[i].row);
    EXPECT_EQ(ref.targets[i].col, fast.targets[i].col);
  }
}

TEST(FastPathEquivalenceTest, AcceleratedRanksChargeStagingTime) {
  // The accelerated platform must actually charge staging somewhere:
  // compare against an identical platform with the accelerators' staging
  // costs zeroed out (compute speeds unchanged).
  const hsi::Scene scene = small_scene();
  const simnet::Platform with_staging = simnet::accelerated_now(12, 4);
  std::vector<simnet::ProcessorSpec> procs = with_staging.processors();
  for (auto& p : procs) {
    p.stage_latency_ms = 0.0;
    p.stage_ms_per_mbit = 0.0;
  }
  const simnet::Platform without("accelerated-now-free-staging",
                                 std::move(procs), {{26.64}});
  const core::RunnerConfig cfg = config_for(core::Algorithm::kAtdca);

  const linalg::ScopedKernelPath path(false);
  const core::RunnerOutput staged =
      core::run_algorithm(with_staging, scene.cube, cfg);
  const core::RunnerOutput free_run =
      core::run_algorithm(without, scene.cube, cfg);
  EXPECT_GT(staged.report.total_time, free_run.report.total_time);
}

TEST(FastPathEquivalenceTest, HomogeneousPolicyAlsoIdentical) {
  // One homogeneous-partition run to cover the other WEA branch.
  const hsi::Scene scene = small_scene();
  const simnet::Platform platform = simnet::fully_homogeneous();
  core::RunnerConfig cfg = config_for(core::Algorithm::kUfcls);
  cfg.policy = core::PartitionPolicy::kHomogeneous;

  core::RunnerOutput ref;
  core::RunnerOutput fast;
  {
    const linalg::ScopedKernelPath path(true);
    ref = core::run_algorithm(platform, scene.cube, cfg);
  }
  {
    const linalg::ScopedKernelPath path(false);
    fast = core::run_algorithm(platform, scene.cube, cfg);
  }
  EXPECT_EQ(ref.report.total_time, fast.report.total_time);
  ASSERT_EQ(ref.targets.size(), fast.targets.size());
  for (std::size_t i = 0; i < ref.targets.size(); ++i) {
    EXPECT_EQ(ref.targets[i].row, fast.targets[i].row);
    EXPECT_EQ(ref.targets[i].col, fast.targets[i].col);
  }
}

// Full bit-identity check between two runs: scientific outputs plus every
// field of every rank's virtual-time decomposition.
void expect_identical_runs(const core::RunnerOutput& a,
                           const core::RunnerOutput& b,
                           const std::string& label) {
  ASSERT_EQ(a.targets.size(), b.targets.size()) << label;
  for (std::size_t i = 0; i < a.targets.size(); ++i) {
    EXPECT_EQ(a.targets[i].row, b.targets[i].row) << label << " target " << i;
    EXPECT_EQ(a.targets[i].col, b.targets[i].col) << label << " target " << i;
  }
  ASSERT_EQ(a.labels, b.labels) << label;
  EXPECT_EQ(a.label_count, b.label_count) << label;
  EXPECT_EQ(a.report.total_time, b.report.total_time) << label;
  ASSERT_EQ(a.report.ranks.size(), b.report.ranks.size()) << label;
  for (std::size_t r = 0; r < a.report.ranks.size(); ++r) {
    const auto& x = a.report.ranks[r];
    const auto& y = b.report.ranks[r];
    EXPECT_EQ(x.clock, y.clock) << label << " rank " << r;
    EXPECT_EQ(x.compute_par, y.compute_par) << label << " rank " << r;
    EXPECT_EQ(x.compute_seq, y.compute_seq) << label << " rank " << r;
    EXPECT_EQ(x.comm, y.comm) << label << " rank " << r;
    EXPECT_EQ(x.wait, y.wait) << label << " rank " << r;
    EXPECT_EQ(x.flops, y.flops) << label << " rank " << r;
    EXPECT_EQ(x.bytes_sent, y.bytes_sent) << label << " rank " << r;
    EXPECT_EQ(x.bytes_received, y.bytes_received) << label << " rank " << r;
  }
}

TEST(TileEquivalenceTest, TilingCannotPerturbAnything) {
  // The tile driver's headline contract: any tile size reproduces the
  // monolithic (auto-tiled) run bit for bit -- outputs AND every rank's
  // virtual clocks -- across both host executor modes and thread counts.
  const hsi::Scene scene = small_scene();
  const simnet::Platform platform = simnet::fully_heterogeneous();
  for (const core::Algorithm alg :
       {core::Algorithm::kPct, core::Algorithm::kAtdca}) {
    const core::RunnerConfig base = config_for(alg);
    const core::RunnerOutput golden =
        core::run_algorithm(platform, scene.cube, base);
    for (const std::size_t tile_rows : {1u, 2u, 5u, 1000u}) {
      core::RunnerConfig cfg = base;
      cfg.tile_rows = tile_rows;
      for (const bool thread_per_rank : {false, true}) {
        vmpi::Options options;
        options.exec_mode = thread_per_rank ? vmpi::ExecMode::kThreadPerRank
                                            : vmpi::ExecMode::kBoundedExecutor;
        for (const std::size_t threads : {1u, 4u}) {
          const linalg::ScopedKernelThreads scoped(threads);
          const core::RunnerOutput out =
              core::run_algorithm(platform, scene.cube, cfg, options);
          expect_identical_runs(
              golden, out,
              std::string(core::to_string(alg)) + " tile_rows=" +
                  std::to_string(tile_rows) +
                  (thread_per_rank ? " tpr" : " bounded") + " threads=" +
                  std::to_string(threads));
        }
      }
    }
  }
}

TEST(TileEquivalenceTest, TilingUnderFaultPlanAlsoIdentical) {
  // Fault-tolerant runs go through the chunk-replay handlers, which call
  // the same shared-accumulator range kernels the tiles do -- a crash plan
  // must not let tile configuration leak into recovery numerics.
  const hsi::Scene scene = small_scene();
  const simnet::Platform platform = simnet::fully_heterogeneous();
  core::RunnerConfig cfg = config_for(core::Algorithm::kPct);
  cfg.fault_tolerant = true;
  const double fault_free_s =
      core::run_algorithm(platform, scene.cube, cfg).report.total_time;
  vmpi::Options options;
  options.fault_plan.crashes.push_back({3, 0.25 * fault_free_s});
  options.fault_plan.crashes.push_back({11, 0.50 * fault_free_s});
  const core::RunnerOutput golden =
      core::run_algorithm(platform, scene.cube, cfg, options);
  for (const std::size_t tile_rows : {1u, 5u}) {
    core::RunnerConfig tiled = cfg;
    tiled.tile_rows = tile_rows;
    const core::RunnerOutput out =
        core::run_algorithm(platform, scene.cube, tiled, options);
    expect_identical_runs(golden, out,
                          "ft tile_rows=" + std::to_string(tile_rows));
  }
}

TEST(TileEquivalenceTest, StreamingOverlapBeatsMonolithicOnAccelerators) {
  // The perf claim behind the tile runtime: on accelerated ranks the
  // streamed driver hides the host->device copy of tile k+1 behind the
  // compute of tile k, so the virtual makespan strictly beats the
  // monolithic upfront-stage run -- with identical scientific outputs.
  // Enough rows per rank and a compute-heavy replication keep the critical
  // path on the accelerated ranks instead of integer row-rounding noise.
  hsi::SceneConfig scfg;
  scfg.rows = 48;
  scfg.cols = 24;
  scfg.bands = 48;
  scfg.seed = 20010916;
  const hsi::Scene scene = hsi::generate_wtc_scene(scfg);
  const simnet::Platform platform = simnet::accelerated_now(2, 2);
  for (const core::Algorithm alg :
       {core::Algorithm::kPct, core::Algorithm::kAtdca}) {
    core::RunnerConfig mono_cfg = config_for(alg);
    mono_cfg.replication = 64;
    core::RunnerConfig stream_cfg = mono_cfg;
    stream_cfg.tile_stream = true;
    const core::RunnerOutput mono =
        core::run_algorithm(platform, scene.cube, mono_cfg);
    const core::RunnerOutput stream =
        core::run_algorithm(platform, scene.cube, stream_cfg);
    EXPECT_LT(stream.report.total_time, mono.report.total_time)
        << core::to_string(alg);
    // Streaming only reschedules the copies; the science is untouched.
    ASSERT_EQ(mono.targets.size(), stream.targets.size());
    for (std::size_t i = 0; i < mono.targets.size(); ++i) {
      EXPECT_EQ(mono.targets[i].row, stream.targets[i].row);
      EXPECT_EQ(mono.targets[i].col, stream.targets[i].col);
    }
    EXPECT_EQ(mono.labels, stream.labels);
    EXPECT_EQ(mono.label_count, stream.label_count);
  }
}

TEST(TileEquivalenceTest, StreamingIsDeterministicAcrossExecutorModes) {
  // Streamed runs keep the engine's reproducibility contract: repeated
  // runs and both executor modes agree bit for bit, including the stable
  // observability metrics (vmpi.stage.* charge accounting).
  const hsi::Scene scene = small_scene();
  const simnet::Platform platform = simnet::accelerated_now(12, 4);
  core::RunnerConfig cfg = config_for(core::Algorithm::kPct);
  cfg.tile_stream = true;

  core::RunnerOutput first;
  obs::Metrics::Snapshot stable_first;
  {
    const obs::ScopedMetrics metrics;
    first = core::run_algorithm(platform, scene.cube, cfg);
    stable_first =
        obs::Metrics::stable_subset(obs::Metrics::instance().snapshot());
  }
  bool saw_stage_metric = false;
  for (const auto& [name, value] : stable_first) {
    saw_stage_metric |= name == "vmpi.stage.tiles";
  }
  EXPECT_TRUE(saw_stage_metric);

  for (const bool thread_per_rank : {false, true}) {
    vmpi::Options options;
    options.exec_mode = thread_per_rank ? vmpi::ExecMode::kThreadPerRank
                                        : vmpi::ExecMode::kBoundedExecutor;
    const obs::ScopedMetrics metrics;
    const core::RunnerOutput out =
        core::run_algorithm(platform, scene.cube, cfg, options);
    expect_identical_runs(first, out,
                          thread_per_rank ? "stream tpr" : "stream bounded");
    EXPECT_EQ(stable_first, obs::Metrics::stable_subset(
                                obs::Metrics::instance().snapshot()))
        << (thread_per_rank ? "stream tpr" : "stream bounded");
  }
}

TEST(MixedPrecisionEquivalenceTest, AdversarialCubeFallsBackBitIdentical) {
  // An adversarial cube whose magnitudes blow the float headroom: the
  // a-priori gate must reject every tile, and the run with the mixed
  // fast path enabled must equal the double run bit for bit.
  hsi::Scene scene = small_scene();
  for (float& v : scene.cube.samples()) v *= 1e17f;
  const simnet::Platform platform = simnet::fully_heterogeneous();
  const core::RunnerConfig cfg = config_for(core::Algorithm::kPct);

  const core::RunnerOutput plain =
      core::run_algorithm(platform, scene.cube, cfg);
  core::RunnerOutput mixed;
  obs::Metrics::Snapshot stable;
  {
    const obs::ScopedMetrics metrics;
    const linalg::ScopedMixedPrecision mp(true);
    mixed = core::run_algorithm(platform, scene.cube, cfg);
    stable = obs::Metrics::stable_subset(obs::Metrics::instance().snapshot());
  }
  expect_identical_runs(plain, mixed, "adversarial mixed");
  // Every tile fell back: zero mixed tiles, a positive fallback count.
  for (const auto& [name, value] : stable) {
    if (name == "core.pct.mp_tiles") {
      EXPECT_EQ(value.count, 0u);
    }
    if (name == "core.pct.mp_fallback_tiles") {
      EXPECT_GT(value.count, 0u);
    }
  }
}

TEST(MixedPrecisionEquivalenceTest, BenignCubeTakesTheFastPath) {
  // On a well-conditioned scene the gate admits tiles, the covariance
  // sweep charges the cheaper float flop count, and the classification
  // stays essentially unchanged.  A single-node platform keeps the run
  // compute-bound, so the flop saving must show up in the makespan (on a
  // networked gang it hides in NIC-serialization slack).
  const hsi::Scene scene = small_scene();
  const simnet::Platform platform = simnet::thunderhead(1);
  const core::RunnerConfig cfg = config_for(core::Algorithm::kPct);

  const core::RunnerOutput plain =
      core::run_algorithm(platform, scene.cube, cfg);
  core::RunnerOutput mixed;
  obs::Metrics::Snapshot stable;
  {
    const obs::ScopedMetrics metrics;
    const linalg::ScopedMixedPrecision mp(true);
    mixed = core::run_algorithm(platform, scene.cube, cfg);
    stable = obs::Metrics::stable_subset(obs::Metrics::instance().snapshot());
  }
  std::uint64_t mixed_tiles = 0;
  for (const auto& [name, value] : stable) {
    if (name == "core.pct.mp_tiles") mixed_tiles = value.count;
  }
  EXPECT_GT(mixed_tiles, 0u);
  EXPECT_LT(mixed.report.total_time, plain.report.total_time);
  // The float accumulation may flip borderline pixels, but the gate bounds
  // the damage: the label images agree almost everywhere.
  ASSERT_EQ(plain.labels.size(), mixed.labels.size());
  std::size_t diff = 0;
  for (std::size_t i = 0; i < plain.labels.size(); ++i) {
    diff += plain.labels[i] != mixed.labels[i] ? 1u : 0u;
  }
  EXPECT_LE(diff, plain.labels.size() / 10);
  EXPECT_EQ(plain.label_count, mixed.label_count);
}

}  // namespace
}  // namespace hprs
