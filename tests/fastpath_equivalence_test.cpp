// End-to-end equivalence of the kernel fast paths: every algorithm is run
// twice on the same scene and platform -- once forcing the scalar reference
// kernels, once on the blocked fast paths -- and must produce identical
// scientific outputs AND an identical virtual-time report.  The virtual
// clock is the repo's headline product (the paper's tables), so this is the
// test that guarantees the host-side optimization cannot perturb it, even
// through data-dependent charges (UFCLS active-set iteration counts, PCT
// Jacobi sweeps).
#include <gtest/gtest.h>

#include <cstddef>

#include "core/runner.hpp"
#include "hsi/scene.hpp"
#include "linalg/kernels.hpp"
#include "linalg/thread_pool.hpp"
#include "simnet/platform.hpp"

namespace hprs {
namespace {

hsi::Scene small_scene() {
  hsi::SceneConfig cfg;
  cfg.rows = 24;
  cfg.cols = 24;
  cfg.bands = 48;
  cfg.seed = 20010916;
  return hsi::generate_wtc_scene(cfg);
}

core::RunnerConfig config_for(core::Algorithm alg) {
  core::RunnerConfig cfg;
  cfg.algorithm = alg;
  cfg.targets = 6;
  cfg.classes = 5;
  cfg.morph_iterations = 3;
  cfg.kernel_radius = 2;
  return cfg;
}

class FastPathEquivalenceTest
    : public ::testing::TestWithParam<core::Algorithm> {};

INSTANTIATE_TEST_SUITE_P(Algorithms, FastPathEquivalenceTest,
                         ::testing::Values(core::Algorithm::kAtdca,
                                           core::Algorithm::kUfcls,
                                           core::Algorithm::kPct,
                                           core::Algorithm::kMorph),
                         [](const auto& param_info) {
                           return core::to_string(param_info.param);
                         });

TEST_P(FastPathEquivalenceTest, OutputsAndVirtualTimeIdentical) {
  const hsi::Scene scene = small_scene();
  const simnet::Platform platform = simnet::fully_heterogeneous();
  const core::RunnerConfig cfg = config_for(GetParam());

  core::RunnerOutput ref;
  core::RunnerOutput fast;
  {
    const linalg::ScopedKernelPath path(true);
    ref = core::run_algorithm(platform, scene.cube, cfg);
  }
  {
    const linalg::ScopedKernelPath path(false);
    fast = core::run_algorithm(platform, scene.cube, cfg);
  }

  // Scientific outputs: identical target lists / label images.
  ASSERT_EQ(ref.targets.size(), fast.targets.size());
  for (std::size_t i = 0; i < ref.targets.size(); ++i) {
    EXPECT_EQ(ref.targets[i].row, fast.targets[i].row) << "target " << i;
    EXPECT_EQ(ref.targets[i].col, fast.targets[i].col) << "target " << i;
  }
  ASSERT_EQ(ref.labels.size(), fast.labels.size());
  for (std::size_t i = 0; i < ref.labels.size(); ++i) {
    ASSERT_EQ(ref.labels[i], fast.labels[i]) << "label " << i;
  }
  EXPECT_EQ(ref.label_count, fast.label_count);

  // Virtual-time model: the fast path must charge exactly what the
  // reference charges, down to the last bit of every rank's clocks.
  EXPECT_EQ(ref.report.total_time, fast.report.total_time);
  ASSERT_EQ(ref.report.ranks.size(), fast.report.ranks.size());
  for (std::size_t r = 0; r < ref.report.ranks.size(); ++r) {
    const auto& a = ref.report.ranks[r];
    const auto& b = fast.report.ranks[r];
    EXPECT_EQ(a.clock, b.clock) << "rank " << r;
    EXPECT_EQ(a.compute_par, b.compute_par) << "rank " << r;
    EXPECT_EQ(a.compute_seq, b.compute_seq) << "rank " << r;
    EXPECT_EQ(a.comm, b.comm) << "rank " << r;
    EXPECT_EQ(a.wait, b.wait) << "rank " << r;
    EXPECT_EQ(a.flops, b.flops) << "rank " << r;
    EXPECT_EQ(a.bytes_sent, b.bytes_sent) << "rank " << r;
    EXPECT_EQ(a.bytes_received, b.bytes_received) << "rank " << r;
  }
}

TEST_P(FastPathEquivalenceTest, ThreadCountCannotPerturbAnything) {
  // The threaded kernels' determinism contract: at 2, 4, and 7 worker
  // threads the fast path must reproduce the single-thread run bit for bit
  // -- scientific outputs and every rank's virtual clocks.
  const hsi::Scene scene = small_scene();
  const simnet::Platform platform = simnet::fully_heterogeneous();
  const core::RunnerConfig cfg = config_for(GetParam());

  const linalg::ScopedKernelPath path(false);
  core::RunnerOutput one;
  {
    const linalg::ScopedKernelThreads threads(1);
    one = core::run_algorithm(platform, scene.cube, cfg);
  }
  for (const std::size_t n : {2u, 4u, 7u}) {
    const linalg::ScopedKernelThreads threads(n);
    const core::RunnerOutput out =
        core::run_algorithm(platform, scene.cube, cfg);
    ASSERT_EQ(one.targets.size(), out.targets.size()) << n << " threads";
    for (std::size_t i = 0; i < one.targets.size(); ++i) {
      EXPECT_EQ(one.targets[i].row, out.targets[i].row)
          << n << " threads, target " << i;
      EXPECT_EQ(one.targets[i].col, out.targets[i].col)
          << n << " threads, target " << i;
    }
    ASSERT_EQ(one.labels.size(), out.labels.size()) << n << " threads";
    for (std::size_t i = 0; i < one.labels.size(); ++i) {
      ASSERT_EQ(one.labels[i], out.labels[i])
          << n << " threads, label " << i;
    }
    EXPECT_EQ(one.label_count, out.label_count) << n << " threads";
    EXPECT_EQ(one.report.total_time, out.report.total_time)
        << n << " threads";
    ASSERT_EQ(one.report.ranks.size(), out.report.ranks.size());
    for (std::size_t r = 0; r < one.report.ranks.size(); ++r) {
      const auto& a = one.report.ranks[r];
      const auto& b = out.report.ranks[r];
      EXPECT_EQ(a.clock, b.clock) << n << " threads, rank " << r;
      EXPECT_EQ(a.flops, b.flops) << n << " threads, rank " << r;
    }
  }
}

TEST(FastPathEquivalenceTest, AcceleratedPlatformAlsoIdentical) {
  // Fast-vs-reference equivalence must also hold where accelerated ranks
  // charge staging: the host-side kernel path cannot leak into the
  // virtual staging charges.
  const hsi::Scene scene = small_scene();
  const simnet::Platform platform = simnet::accelerated_now(12, 4);
  const core::RunnerConfig cfg = config_for(core::Algorithm::kAtdca);

  core::RunnerOutput ref;
  core::RunnerOutput fast;
  {
    const linalg::ScopedKernelPath path(true);
    ref = core::run_algorithm(platform, scene.cube, cfg);
  }
  {
    const linalg::ScopedKernelPath path(false);
    fast = core::run_algorithm(platform, scene.cube, cfg);
  }
  EXPECT_EQ(ref.report.total_time, fast.report.total_time);
  ASSERT_EQ(ref.report.ranks.size(), fast.report.ranks.size());
  for (std::size_t r = 0; r < ref.report.ranks.size(); ++r) {
    EXPECT_EQ(ref.report.ranks[r].clock, fast.report.ranks[r].clock)
        << "rank " << r;
    EXPECT_EQ(ref.report.ranks[r].comm, fast.report.ranks[r].comm)
        << "rank " << r;
  }
  ASSERT_EQ(ref.targets.size(), fast.targets.size());
  for (std::size_t i = 0; i < ref.targets.size(); ++i) {
    EXPECT_EQ(ref.targets[i].row, fast.targets[i].row);
    EXPECT_EQ(ref.targets[i].col, fast.targets[i].col);
  }
}

TEST(FastPathEquivalenceTest, AcceleratedRanksChargeStagingTime) {
  // The accelerated platform must actually charge staging somewhere:
  // compare against an identical platform with the accelerators' staging
  // costs zeroed out (compute speeds unchanged).
  const hsi::Scene scene = small_scene();
  const simnet::Platform with_staging = simnet::accelerated_now(12, 4);
  std::vector<simnet::ProcessorSpec> procs = with_staging.processors();
  for (auto& p : procs) {
    p.stage_latency_ms = 0.0;
    p.stage_ms_per_mbit = 0.0;
  }
  const simnet::Platform without("accelerated-now-free-staging",
                                 std::move(procs), {{26.64}});
  const core::RunnerConfig cfg = config_for(core::Algorithm::kAtdca);

  const linalg::ScopedKernelPath path(false);
  const core::RunnerOutput staged =
      core::run_algorithm(with_staging, scene.cube, cfg);
  const core::RunnerOutput free_run =
      core::run_algorithm(without, scene.cube, cfg);
  EXPECT_GT(staged.report.total_time, free_run.report.total_time);
}

TEST(FastPathEquivalenceTest, HomogeneousPolicyAlsoIdentical) {
  // One homogeneous-partition run to cover the other WEA branch.
  const hsi::Scene scene = small_scene();
  const simnet::Platform platform = simnet::fully_homogeneous();
  core::RunnerConfig cfg = config_for(core::Algorithm::kUfcls);
  cfg.policy = core::PartitionPolicy::kHomogeneous;

  core::RunnerOutput ref;
  core::RunnerOutput fast;
  {
    const linalg::ScopedKernelPath path(true);
    ref = core::run_algorithm(platform, scene.cube, cfg);
  }
  {
    const linalg::ScopedKernelPath path(false);
    fast = core::run_algorithm(platform, scene.cube, cfg);
  }
  EXPECT_EQ(ref.report.total_time, fast.report.total_time);
  ASSERT_EQ(ref.targets.size(), fast.targets.size());
  for (std::size_t i = 0; i < ref.targets.size(); ++i) {
    EXPECT_EQ(ref.targets[i].row, fast.targets[i].row);
    EXPECT_EQ(ref.targets[i].col, fast.targets[i].col);
  }
}

}  // namespace
}  // namespace hprs
