// End-to-end equivalence of the kernel fast paths: every algorithm is run
// twice on the same scene and platform -- once forcing the scalar reference
// kernels, once on the blocked fast paths -- and must produce identical
// scientific outputs AND an identical virtual-time report.  The virtual
// clock is the repo's headline product (the paper's tables), so this is the
// test that guarantees the host-side optimization cannot perturb it, even
// through data-dependent charges (UFCLS active-set iteration counts, PCT
// Jacobi sweeps).
#include <gtest/gtest.h>

#include <cstddef>

#include "core/runner.hpp"
#include "hsi/scene.hpp"
#include "linalg/kernels.hpp"
#include "simnet/platform.hpp"

namespace hprs {
namespace {

hsi::Scene small_scene() {
  hsi::SceneConfig cfg;
  cfg.rows = 24;
  cfg.cols = 24;
  cfg.bands = 48;
  cfg.seed = 20010916;
  return hsi::generate_wtc_scene(cfg);
}

core::RunnerConfig config_for(core::Algorithm alg) {
  core::RunnerConfig cfg;
  cfg.algorithm = alg;
  cfg.targets = 6;
  cfg.classes = 5;
  cfg.morph_iterations = 3;
  cfg.kernel_radius = 2;
  return cfg;
}

class FastPathEquivalenceTest
    : public ::testing::TestWithParam<core::Algorithm> {};

INSTANTIATE_TEST_SUITE_P(Algorithms, FastPathEquivalenceTest,
                         ::testing::Values(core::Algorithm::kAtdca,
                                           core::Algorithm::kUfcls,
                                           core::Algorithm::kPct,
                                           core::Algorithm::kMorph),
                         [](const auto& param_info) {
                           return core::to_string(param_info.param);
                         });

TEST_P(FastPathEquivalenceTest, OutputsAndVirtualTimeIdentical) {
  const hsi::Scene scene = small_scene();
  const simnet::Platform platform = simnet::fully_heterogeneous();
  const core::RunnerConfig cfg = config_for(GetParam());

  core::RunnerOutput ref;
  core::RunnerOutput fast;
  {
    const linalg::ScopedKernelPath path(true);
    ref = core::run_algorithm(platform, scene.cube, cfg);
  }
  {
    const linalg::ScopedKernelPath path(false);
    fast = core::run_algorithm(platform, scene.cube, cfg);
  }

  // Scientific outputs: identical target lists / label images.
  ASSERT_EQ(ref.targets.size(), fast.targets.size());
  for (std::size_t i = 0; i < ref.targets.size(); ++i) {
    EXPECT_EQ(ref.targets[i].row, fast.targets[i].row) << "target " << i;
    EXPECT_EQ(ref.targets[i].col, fast.targets[i].col) << "target " << i;
  }
  ASSERT_EQ(ref.labels.size(), fast.labels.size());
  for (std::size_t i = 0; i < ref.labels.size(); ++i) {
    ASSERT_EQ(ref.labels[i], fast.labels[i]) << "label " << i;
  }
  EXPECT_EQ(ref.label_count, fast.label_count);

  // Virtual-time model: the fast path must charge exactly what the
  // reference charges, down to the last bit of every rank's clocks.
  EXPECT_EQ(ref.report.total_time, fast.report.total_time);
  ASSERT_EQ(ref.report.ranks.size(), fast.report.ranks.size());
  for (std::size_t r = 0; r < ref.report.ranks.size(); ++r) {
    const auto& a = ref.report.ranks[r];
    const auto& b = fast.report.ranks[r];
    EXPECT_EQ(a.clock, b.clock) << "rank " << r;
    EXPECT_EQ(a.compute_par, b.compute_par) << "rank " << r;
    EXPECT_EQ(a.compute_seq, b.compute_seq) << "rank " << r;
    EXPECT_EQ(a.comm, b.comm) << "rank " << r;
    EXPECT_EQ(a.wait, b.wait) << "rank " << r;
    EXPECT_EQ(a.flops, b.flops) << "rank " << r;
    EXPECT_EQ(a.bytes_sent, b.bytes_sent) << "rank " << r;
    EXPECT_EQ(a.bytes_received, b.bytes_received) << "rank " << r;
  }
}

TEST(FastPathEquivalenceTest, HomogeneousPolicyAlsoIdentical) {
  // One homogeneous-partition run to cover the other WEA branch.
  const hsi::Scene scene = small_scene();
  const simnet::Platform platform = simnet::fully_homogeneous();
  core::RunnerConfig cfg = config_for(core::Algorithm::kUfcls);
  cfg.policy = core::PartitionPolicy::kHomogeneous;

  core::RunnerOutput ref;
  core::RunnerOutput fast;
  {
    const linalg::ScopedKernelPath path(true);
    ref = core::run_algorithm(platform, scene.cube, cfg);
  }
  {
    const linalg::ScopedKernelPath path(false);
    fast = core::run_algorithm(platform, scene.cube, cfg);
  }
  EXPECT_EQ(ref.report.total_time, fast.report.total_time);
  ASSERT_EQ(ref.targets.size(), fast.targets.size());
  for (std::size_t i = 0; i < ref.targets.size(); ++i) {
    EXPECT_EQ(ref.targets[i].row, fast.targets[i].row);
    EXPECT_EQ(ref.targets[i].col, fast.targets[i].col);
  }
}

}  // namespace
}  // namespace hprs
