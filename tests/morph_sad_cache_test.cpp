// Property tests for the MORPH SAD-cache fast path: two engines run the
// same block, one on the scalar reference pass and one on the cached-plane
// pass, and every iteration's working image and MEI scores must match bit
// for bit.  Radii 1-3 and block shapes smaller than, equal to, and larger
// than the structuring element exercise all window-clamping cases.
#include <gtest/gtest.h>

#include <cstddef>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "core/morph_kernel.hpp"
#include "hsi/cube.hpp"
#include "linalg/kernels.hpp"

namespace hprs {
namespace {

hsi::HsiCube random_cube(std::size_t rows, std::size_t cols,
                         std::size_t bands, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<float> samples(rows * cols * bands);
  for (auto& v : samples) v = static_cast<float>(rng.uniform(0.05, 1.0));
  return hsi::HsiCube(rows, cols, bands, std::move(samples));
}

// (rows, cols, radius)
using Shape = std::tuple<std::size_t, std::size_t, std::size_t>;

class MorphSadCacheTest : public ::testing::TestWithParam<Shape> {};

INSTANTIATE_TEST_SUITE_P(
    Shapes, MorphSadCacheTest,
    ::testing::Values(Shape{1, 1, 1},    // degenerate single pixel
                      Shape{2, 7, 1},    // fewer rows than the window
                      Shape{7, 2, 2},    // fewer cols than the window
                      Shape{5, 5, 2},    // block == window
                      Shape{9, 8, 1},    // generic interior + borders
                      Shape{8, 9, 2},    //
                      Shape{11, 7, 3},   // radius 3, odd sizes
                      Shape{7, 11, 3}));

TEST_P(MorphSadCacheTest, ImageAndMeiBitIdenticalAcrossIterations) {
  const auto [rows, cols, radius] = GetParam();
  const std::size_t bands = 17;
  const std::size_t iterations = 3;
  const hsi::HsiCube block = random_cube(rows, cols, bands, 42 + rows * cols);

  core::MorphBlockEngine ref_engine(block, radius);
  core::MorphBlockEngine fast_engine(block, radius);

  for (std::size_t it = 0; it < iterations; ++it) {
    const bool last = it + 1 == iterations;
    {
      const linalg::ScopedKernelPath path(true);
      ref_engine.iterate(last);
    }
    {
      const linalg::ScopedKernelPath path(false);
      fast_engine.iterate(last);
    }

    const auto ref_img = ref_engine.image().samples();
    const auto fast_img = fast_engine.image().samples();
    ASSERT_EQ(ref_img.size(), fast_img.size());
    for (std::size_t s = 0; s < ref_img.size(); ++s) {
      ASSERT_EQ(ref_img[s], fast_img[s])
          << "image sample " << s << " after iteration " << it;
    }

    const auto& ref_mei = ref_engine.mei();
    const auto& fast_mei = fast_engine.mei();
    ASSERT_EQ(ref_mei.size(), fast_mei.size());
    for (std::size_t p = 0; p < ref_mei.size(); ++p) {
      ASSERT_EQ(ref_mei[p], fast_mei[p])
          << "MEI at pixel " << p << " after iteration " << it;
    }
  }
}

TEST_P(MorphSadCacheTest, MeiIsMonotoneNonDecreasing) {
  // The engine keeps a running max; iterating more must never lower it.
  const auto [rows, cols, radius] = GetParam();
  const hsi::HsiCube block = random_cube(rows, cols, 9, 7 + rows + cols);
  core::MorphBlockEngine engine(block, radius);
  engine.iterate(false);
  const std::vector<double> first = engine.mei();
  engine.iterate(true);
  const auto& second = engine.mei();
  for (std::size_t p = 0; p < first.size(); ++p) {
    EXPECT_GE(second[p], first[p]) << "pixel " << p;
  }
}

TEST(MorphSadCacheTest, ZeroPixelHandledLikeReference) {
  // Degenerate all-zero spectra hit sad()'s special cases; the cached
  // self-SAD and plane values must reproduce them exactly.
  hsi::HsiCube block(3, 3, 5);
  // Leave pixel (1, 1) zero; fill the rest.
  Xoshiro256 rng(11);
  for (std::size_t p = 0; p < 9; ++p) {
    if (p == 4) continue;
    for (auto& v : block.pixel(p)) {
      v = static_cast<float>(rng.uniform(0.1, 1.0));
    }
  }
  core::MorphBlockEngine ref_engine(block, 1);
  core::MorphBlockEngine fast_engine(block, 1);
  {
    const linalg::ScopedKernelPath path(true);
    ref_engine.iterate(false);
  }
  {
    const linalg::ScopedKernelPath path(false);
    fast_engine.iterate(false);
  }
  const auto& ref_mei = ref_engine.mei();
  const auto& fast_mei = fast_engine.mei();
  for (std::size_t p = 0; p < ref_mei.size(); ++p) {
    EXPECT_EQ(ref_mei[p], fast_mei[p]) << "pixel " << p;
  }
  const auto ref_img = ref_engine.image().samples();
  const auto fast_img = fast_engine.image().samples();
  for (std::size_t s = 0; s < ref_img.size(); ++s) {
    EXPECT_EQ(ref_img[s], fast_img[s]) << "sample " << s;
  }
}

}  // namespace
}  // namespace hprs
