#include "core/ufcls.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "simnet/platform.hpp"
#include "test_scenes.hpp"

namespace hprs::core {
namespace {

bool found(const TargetDetectionResult& result, const testing::Plant& plant) {
  return std::any_of(result.targets.begin(), result.targets.end(),
                     [&](const PixelLocation& t) {
                       return t.row == plant.row && t.col == plant.col;
                     });
}

TEST(UfclsTest, FindsStrongPlantedAnomalies) {
  auto cube = testing::striped_cube(48, 32, 32, 3);
  const auto plants = testing::plant_targets(cube, 3);
  UfclsConfig cfg;
  cfg.targets = 8;
  const auto result = run_ufcls(simnet::fully_heterogeneous(), cube, cfg);
  ASSERT_EQ(result.targets.size(), 8u);
  for (const auto& plant : plants) {
    EXPECT_TRUE(found(result, plant))
        << "missed anomaly at " << plant.row << "," << plant.col;
  }
}

TEST(UfclsTest, FirstTargetIsTheBrightestPixel) {
  auto cube = testing::striped_cube(32, 32, 16, 2);
  const auto px = cube.pixel(3, 29);
  for (auto& v : px) v = 40.0f;
  UfclsConfig cfg;
  cfg.targets = 3;
  const auto result = run_ufcls(simnet::thunderhead(4), cube, cfg);
  ASSERT_GE(result.targets.size(), 1u);
  EXPECT_EQ(result.targets[0].row, 3u);
  EXPECT_EQ(result.targets[0].col, 29u);
}

TEST(UfclsTest, SecondTargetMaximizesReconstructionError) {
  // Two-material cube: after the brightest pixel (material A), the pixel
  // with the worst single-endmember fit must come from material B.
  auto cube = testing::striped_cube(32, 16, 24, 2, /*noise=*/0.0005);
  UfclsConfig cfg;
  cfg.targets = 2;
  const auto result = run_ufcls(simnet::thunderhead(2), cube, cfg);
  ASSERT_EQ(result.targets.size(), 2u);
  const bool first_is_top = result.targets[0].row < 16;
  const bool second_is_top = result.targets[1].row < 16;
  EXPECT_NE(first_is_top, second_is_top)
      << "the two targets should come from different stripes";
}

TEST(UfclsTest, ResultIsIndependentOfProcessorCount) {
  auto cube = testing::striped_cube(64, 24, 24, 3);
  UfclsConfig cfg;
  cfg.targets = 4;
  const auto r1 = run_ufcls(simnet::thunderhead(1), cube, cfg);
  const auto r8 = run_ufcls(simnet::thunderhead(8), cube, cfg);
  EXPECT_EQ(r1.targets, r8.targets);
}

TEST(UfclsTest, HeteroBeatsHomoOnHeterogeneousPlatform) {
  auto cube = testing::striped_cube(64, 32, 32, 3);
  UfclsConfig het;
  het.targets = 5;
  het.replication = 64;
  UfclsConfig homo = het;
  homo.policy = PartitionPolicy::kHomogeneous;
  const auto platform = simnet::fully_heterogeneous();
  EXPECT_LT(run_ufcls(platform, cube, het).report.total_time,
            run_ufcls(platform, cube, homo).report.total_time * 0.6);
}

TEST(UfclsTest, TargetsAreDistinct) {
  auto cube = testing::striped_cube(40, 24, 24, 4);
  UfclsConfig cfg;
  cfg.targets = 6;
  const auto result = run_ufcls(simnet::fully_homogeneous(), cube, cfg);
  for (std::size_t i = 0; i < result.targets.size(); ++i) {
    for (std::size_t j = i + 1; j < result.targets.size(); ++j) {
      EXPECT_FALSE(result.targets[i] == result.targets[j]);
    }
  }
}

TEST(UfclsTest, ValidatesInputs) {
  auto cube = testing::striped_cube(32, 16, 16, 2);
  UfclsConfig cfg;
  cfg.targets = 0;
  EXPECT_THROW((void)run_ufcls(simnet::thunderhead(2), cube, cfg), Error);
  cfg.targets = 2;
  EXPECT_THROW((void)run_ufcls(simnet::thunderhead(2), hsi::HsiCube(), cfg),
               Error);
}

TEST(UfclsTest, RunsCheaperPerIterationThanItsWorkloadBound) {
  // ufcls_workload assumes two active-set rounds per pixel; the measured
  // flops must stay within a small factor of the model.
  auto cube = testing::striped_cube(32, 16, 24, 2);
  UfclsConfig cfg;
  cfg.targets = 4;
  const auto result = run_ufcls(simnet::thunderhead(1), cube, cfg);
  const auto model = ufcls_workload(24, 4);
  const double modeled =
      model.flops_per_pixel * static_cast<double>(cube.pixel_count());
  EXPECT_LT(static_cast<double>(result.report.total_flops()), 3.0 * modeled);
}

}  // namespace
}  // namespace hprs::core
