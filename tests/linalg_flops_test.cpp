// Pins the analytic flop-cost formulas to hand counts.  The virtual-time
// model multiplies these by processor cycle-times, so a silent drift here
// would skew every simulated table.
#include "linalg/flops.hpp"

#include <gtest/gtest.h>

#include "hsi/metrics.hpp"

namespace hprs::linalg::flops {
namespace {

TEST(FlopsTest, DotIsTwoPerElement) {
  EXPECT_EQ(dot(1), 2u);
  EXPECT_EQ(dot(224), 448u);
}

TEST(FlopsTest, NormAddsTheSquareRoot) {
  EXPECT_EQ(norm(10), dot(10) + 1);
}

TEST(FlopsTest, AxpyIsTwoPerElement) { EXPECT_EQ(axpy(100), 200u); }

TEST(FlopsTest, MatvecIsRowsTimesDot) {
  EXPECT_EQ(matvec(3, 7), 3 * dot(7));
  EXPECT_EQ(matvec(1, 1), 2u);
}

TEST(FlopsTest, MatmulCountsEveryOutputDot) {
  EXPECT_EQ(matmul(2, 3, 4), 2 * 4 * dot(3));
}

TEST(FlopsTest, GramCountsUpperTriangleOnly) {
  // 4 columns -> 10 unique entries, each a dot of the row count.
  EXPECT_EQ(gram(16, 4), 10 * dot(16));
}

TEST(FlopsTest, CubicSolversScale) {
  EXPECT_EQ(gauss_jordan_inverse(10), 2000u);
  EXPECT_EQ(cholesky(3), 9u + 18u);
  EXPECT_EQ(cholesky_solve(5), 50u);
}

TEST(FlopsTest, JacobiSweepMatchesFormula) {
  // n=4: 6 rotations * (8*4 + 12) = 264.
  EXPECT_EQ(jacobi_sweep(4), 264u);
  EXPECT_EQ(jacobi_sweep(1), 0u);
}

TEST(FlopsTest, SadIsThreeDotsPlusScalarTail) {
  EXPECT_EQ(sad(224), 3 * dot(224) + 4);
  EXPECT_EQ(hsi::flops::sad(224), sad(224));
}

TEST(FlopsTest, OspScoreComposition) {
  const Count n = 224;
  const Count t = 5;
  EXPECT_EQ(osp_score(n, t), t * dot(n) + cholesky_solve(t) + dot(n) + dot(t));
}

TEST(FlopsTest, OspScoreGrowsWithTargets) {
  EXPECT_LT(osp_score(224, 1), osp_score(224, 2));
  EXPECT_LT(osp_score(224, 8), osp_score(224, 16));
}

TEST(FlopsTest, UclsComposition) {
  EXPECT_EQ(ucls(100, 4), 4 * dot(100) + cholesky_solve(4));
}

TEST(FlopsTest, FclsGrowsWithActiveSetRounds) {
  EXPECT_LT(fcls(224, 6, 1), fcls(224, 6, 2));
  EXPECT_LT(fcls(224, 6, 2), fcls(224, 6, 5));
}

TEST(FlopsTest, FclsComposition) {
  const Count n = 64;
  const Count t = 3;
  const Count rounds = 2;
  EXPECT_EQ(fcls(n, t, rounds),
            t * dot(n) + dot(n) + 2 * cholesky_solve(t) + 6 * t +
                (rounds - 1) *
                    (cholesky(t) + 2 * cholesky_solve(t) + 6 * t) +
                t * dot(t) + 2 * t);
}

TEST(FlopsTest, SidIsSixPerBand) { EXPECT_EQ(hsi::flops::sid(224), 1344u); }

}  // namespace
}  // namespace hprs::linalg::flops
