// Hand-verified timing of the collective cost models: linear (network of
// workstations) and binomial-tree (switched cluster fabric) schedules, NIC
// serialization, inter-segment serial links, and the exchange collective.
#include <gtest/gtest.h>

#include "vmpi/comm.hpp"
#include "vmpi/engine.hpp"

namespace hprs::vmpi {
namespace {

/// 1 megabit at 10 ms/megabit = 10 ms of wire time; compute is negligible.
constexpr std::size_t kMegabit = 125'000;
constexpr double kD = 0.010;

simnet::Platform now_platform(std::size_t n) {
  std::vector<simnet::ProcessorSpec> procs;
  for (std::size_t i = 0; i < n; ++i) {
    procs.push_back(
        simnet::ProcessorSpec{"p" + std::to_string(i), "t", 0.001, 1024, 512, 0});
  }
  return simnet::Platform("now", std::move(procs), {{10.0}});
}

simnet::Platform cluster_platform(std::size_t n) {
  std::vector<simnet::ProcessorSpec> procs;
  for (std::size_t i = 0; i < n; ++i) {
    procs.push_back(
        simnet::ProcessorSpec{"n" + std::to_string(i), "t", 0.001, 1024, 512, 0});
  }
  return simnet::Platform("cluster", std::move(procs), {{10.0}},
                          /*switched_fabric=*/true);
}

/// Two segments of two processors; 10 ms/megabit inside, 100 between.
simnet::Platform segmented_platform() {
  std::vector<simnet::ProcessorSpec> procs;
  for (std::size_t i = 0; i < 4; ++i) {
    procs.push_back(simnet::ProcessorSpec{"p" + std::to_string(i), "t", 0.001,
                                          1024, 512, i / 2});
  }
  return simnet::Platform("segmented", std::move(procs),
                          {{10.0, 100.0}, {100.0, 10.0}});
}

Options zero_latency() {
  Options o;
  o.per_message_latency_s = 0.0;
  o.deadlock_timeout_s = 5.0;
  return o;
}

TEST(LinearCollectivesTest, BcastSerializesThroughRootNic) {
  Engine engine(now_platform(3), zero_latency());
  const auto report = engine.run([](Comm& comm) {
    (void)comm.bcast(0, comm.is_root() ? 42 : 0, kMegabit);
  });
  // Root sends to rank 1 (ends at d), then rank 2 (ends at 2d).
  EXPECT_NEAR(report.ranks[1].clock, kD, 1e-12);
  EXPECT_NEAR(report.ranks[2].clock, 2 * kD, 1e-12);
  EXPECT_NEAR(report.ranks[0].clock, 2 * kD, 1e-12);
  EXPECT_EQ(report.ranks[0].bytes_sent, 2 * kMegabit);
  EXPECT_EQ(report.ranks[2].bytes_received, kMegabit);
}

TEST(LinearCollectivesTest, GatherSerializesThroughRootNic) {
  Engine engine(now_platform(3), zero_latency());
  const auto report = engine.run([](Comm& comm) {
    (void)comm.gather(0, comm.rank(), kMegabit);
  });
  // Rank 1 delivers first (d), rank 2 queues behind it (2d).
  EXPECT_NEAR(report.ranks[1].clock, kD, 1e-12);
  EXPECT_NEAR(report.ranks[2].clock, 2 * kD, 1e-12);
  EXPECT_NEAR(report.ranks[0].clock, 2 * kD, 1e-12);
  EXPECT_EQ(report.ranks[0].bytes_received, 2 * kMegabit);
}

TEST(LinearCollectivesTest, ScatterChargesPerPartSizes) {
  Engine engine(now_platform(3), zero_latency());
  const auto report = engine.run([](Comm& comm) {
    std::vector<int> parts;
    std::vector<std::size_t> bytes = {0, kMegabit, 3 * kMegabit};
    if (comm.is_root()) parts = {0, 1, 2};
    (void)comm.scatter(0, std::move(parts), bytes);
  });
  // Rank 1 receives 1 megabit (d), rank 2 then 3 megabits (d + 3d = 4d).
  EXPECT_NEAR(report.ranks[1].clock, kD, 1e-12);
  EXPECT_NEAR(report.ranks[2].clock, 4 * kD, 1e-12);
  EXPECT_NEAR(report.ranks[0].clock, 4 * kD, 1e-12);
}

TEST(LinearCollectivesTest, LateRootDelaysEveryTransfer) {
  Engine engine(now_platform(2), zero_latency());
  const auto report = engine.run([](Comm& comm) {
    if (comm.is_root()) comm.compute(50'000'000);  // busy until 50 ms
    (void)comm.bcast(0, comm.is_root() ? 1 : 0, kMegabit);
  });
  EXPECT_NEAR(report.ranks[1].clock, 0.050 + kD, 1e-9);
}

TEST(TreeCollectivesTest, BcastCompletesInLogDepth) {
  Engine engine(cluster_platform(4), zero_latency());
  const auto report = engine.run([](Comm& comm) {
    (void)comm.bcast(0, comm.is_root() ? 42 : 0, kMegabit);
  });
  // Binomial: step 1: 0->1 (d).  Step 2: 0->2 and 1->3 (both end 2d).
  // Rank 1 receives at d but then forwards to rank 3, so every rank's
  // clock ends at 2d -- two rounds instead of the linear schedule's three.
  EXPECT_NEAR(report.ranks[1].clock, 2 * kD, 1e-12);
  EXPECT_NEAR(report.ranks[2].clock, 2 * kD, 1e-12);
  EXPECT_NEAR(report.ranks[3].clock, 2 * kD, 1e-12);
  EXPECT_NEAR(report.total_time, 2 * kD, 1e-12);
}

TEST(TreeCollectivesTest, TreeBeatsLinearBroadcastAtScale) {
  constexpr std::size_t kN = 16;
  Engine linear(now_platform(kN), zero_latency());
  Engine tree(cluster_platform(kN), zero_latency());
  const auto program = [](Comm& comm) {
    (void)comm.bcast(0, comm.is_root() ? 1 : 0, kMegabit);
  };
  const auto rl = linear.run(program);
  const auto rt = tree.run(program);
  EXPECT_NEAR(rl.total_time, 15 * kD, 1e-9);
  EXPECT_NEAR(rt.total_time, 4 * kD, 1e-9);  // ceil(log2 16) rounds
}

TEST(TreeCollectivesTest, GatherAggregatesSubtreeBytes) {
  Engine engine(cluster_platform(4), zero_latency());
  const auto report = engine.run([](Comm& comm) {
    (void)comm.gather(0, comm.rank(), kMegabit);
  });
  // Step 1: 1->0 and 3->2 in parallel (each d).  Step 2: 2 forwards its
  // accumulated 2 megabits to 0, ending at d + 2d = 3d.
  EXPECT_NEAR(report.total_time, 3 * kD, 1e-12);
  EXPECT_EQ(report.ranks[2].bytes_sent, 2 * kMegabit);
  EXPECT_EQ(report.ranks[2].bytes_received, kMegabit);
}

TEST(TreeCollectivesTest, ScatterShipsSubtreeBytesDown) {
  Engine engine(cluster_platform(4), zero_latency());
  const auto report = engine.run([](Comm& comm) {
    std::vector<int> parts;
    if (comm.is_root()) parts = {0, 1, 2, 3};
    (void)comm.scatter(0, std::move(parts),
                       std::vector<std::size_t>(4, kMegabit));
  });
  // Step 1: 0 ships ranks {2,3}'s 2 megabits to 2 (ends 2d).
  // Step 2: 0->1 (1 megabit, ends 3d because the root NIC was busy);
  //         2->3 (1 megabit, ends 3d, so rank 2 also finishes at 3d).
  EXPECT_NEAR(report.ranks[1].clock, 3 * kD, 1e-12);
  EXPECT_NEAR(report.ranks[3].clock, 3 * kD, 1e-12);
  EXPECT_EQ(report.ranks[2].bytes_received, 2 * kMegabit);
  EXPECT_NEAR(report.total_time, 3 * kD, 1e-9);
}

TEST(SegmentedNetworkTest, CrossSegmentLinksAreSlower) {
  Engine engine(segmented_platform(), zero_latency());
  const auto report = engine.run([](Comm& comm) {
    if (comm.rank() == 0) comm.send(1, 1, kMegabit);   // intra: 10 ms
    if (comm.rank() == 1) (void)comm.recv<int>(0);
    if (comm.rank() == 2) comm.send(3, 1, kMegabit);   // intra: 10 ms
    if (comm.rank() == 3) (void)comm.recv<int>(2);
  });
  EXPECT_NEAR(report.ranks[1].clock, 0.010, 1e-12);
  EXPECT_NEAR(report.ranks[3].clock, 0.010, 1e-12);
}

TEST(SegmentedNetworkTest, InterSegmentSerialLinkSerializesTransfers) {
  Engine engine(segmented_platform(), zero_latency());
  // Two simultaneous cross-segment transfers (0->2 and 1->3) must share
  // the single serial link between segments 0 and 1: 100 ms each, back to
  // back.
  const auto report = engine.run([](Comm& comm) {
    std::vector<std::tuple<int, int, std::size_t>> sends;
    if (comm.rank() == 0) sends.emplace_back(2, 1, kMegabit);
    if (comm.rank() == 1) sends.emplace_back(3, 1, kMegabit);
    (void)comm.exchange(std::move(sends));
  });
  EXPECT_NEAR(report.total_time, 0.200, 1e-9);
}

TEST(ExchangeTest, DisjointPairsRunInParallel) {
  Engine engine(now_platform(4), zero_latency());
  const auto report = engine.run([](Comm& comm) {
    std::vector<std::tuple<int, int, std::size_t>> sends;
    if (comm.rank() == 0) sends.emplace_back(1, 10, kMegabit);
    if (comm.rank() == 2) sends.emplace_back(3, 30, kMegabit);
    const auto recv = comm.exchange(std::move(sends));
    if (comm.rank() == 1) {
      ASSERT_EQ(recv.size(), 1u);
      EXPECT_EQ(recv[0].first, 0);
      EXPECT_EQ(recv[0].second, 10);
    }
    if (comm.rank() == 3) {
      ASSERT_EQ(recv.size(), 1u);
      EXPECT_EQ(recv[0].second, 30);
    }
    if (comm.rank() == 0 || comm.rank() == 2) {
      EXPECT_TRUE(recv.empty());
    }
  });
  // Disjoint NIC pairs on one segment: both finish after one wire time.
  EXPECT_NEAR(report.total_time, kD, 1e-12);
}

TEST(ExchangeTest, BidirectionalPairSerializesOnNics) {
  Engine engine(now_platform(2), zero_latency());
  const auto report = engine.run([](Comm& comm) {
    std::vector<std::tuple<int, int, std::size_t>> sends;
    sends.emplace_back(1 - comm.rank(), comm.rank(), kMegabit);
    const auto recv = comm.exchange(std::move(sends));
    ASSERT_EQ(recv.size(), 1u);
    EXPECT_EQ(recv[0].second, 1 - comm.rank());
  });
  // The two messages share both NICs, so they go back to back.
  EXPECT_NEAR(report.total_time, 2 * kD, 1e-12);
}

TEST(ExchangeTest, EmptyExchangeIsAVirtuallyFreeBarrier) {
  Engine engine(now_platform(3), zero_latency());
  const auto report = engine.run([](Comm& comm) {
    (void)comm.exchange(std::vector<std::tuple<int, int, std::size_t>>{});
  });
  EXPECT_DOUBLE_EQ(report.total_time, 0.0);
}

TEST(LatencyTest, PerMessageLatencyIsAdded) {
  Options opts;
  opts.per_message_latency_s = 0.5;
  Engine engine(now_platform(2), opts);
  const auto report = engine.run([](Comm& comm) {
    (void)comm.bcast(0, comm.is_root() ? 1 : 0, kMegabit);
  });
  EXPECT_NEAR(report.total_time, 0.5 + kD, 1e-9);
}


TEST(AllreduceTest, CombinesAcrossRanksAndBroadcasts) {
  Engine engine(now_platform(4), zero_latency());
  engine.run([](Comm& comm) {
    const int total = comm.allreduce(
        comm.rank() + 1, 16, [](int a, int b) { return a + b; }, 1);
    EXPECT_EQ(total, 1 + 2 + 3 + 4);
  });
}

TEST(AllreduceTest, CostsAGatherPlusABroadcast) {
  Engine engine(now_platform(3), zero_latency());
  const auto report = engine.run([](Comm& comm) {
    (void)comm.allreduce(1, kMegabit, [](int a, int b) { return a + b; });
  });
  // Gather: workers deliver at d and 2d.  Bcast: root sends at 2d+d and
  // 2d+2d.  Total 4d.
  EXPECT_NEAR(report.total_time, 4 * kD, 1e-9);
}

TEST(AllreduceTest, ChargesCombineFlopsSequentiallyAtRoot) {
  Engine engine(now_platform(3), zero_latency());
  const auto report = engine.run([](Comm& comm) {
    (void)comm.allreduce(
        1, 8, [](int a, int b) { return a + b; }, 1'000'000);
  });
  // Two folds of 1 Mflop each at w = 0.001 s/Mflop.
  EXPECT_EQ(report.ranks[0].flops, 2'000'000u);
}

TEST(AllgatherTest, EveryRankSeesEveryValueInOrder) {
  Engine engine(now_platform(4), zero_latency());
  engine.run([](Comm& comm) {
    const auto all = comm.allgather(comm.rank() * 7, 16);
    ASSERT_EQ(all.size(), 4u);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(all[static_cast<std::size_t>(i)], i * 7);
    }
  });
}

TEST(AllgatherTest, BroadcastLegCarriesTheConcatenation) {
  Engine engine(now_platform(2), zero_latency());
  const auto report = engine.run([](Comm& comm) {
    (void)comm.allgather(comm.rank(), kMegabit);
  });
  // Gather: 1 megabit at d.  Bcast back: 2 megabits -> 2d more.
  EXPECT_NEAR(report.total_time, 3 * kD, 1e-9);
}

}  // namespace
}  // namespace hprs::vmpi
