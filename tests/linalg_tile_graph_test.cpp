// Unit coverage of the tile DAG (linalg/tile_graph) and the gated
// mixed-precision tile kernels: tiling bookkeeping, the deterministic ready
// order that creates stage/compute overlap, cycle detection, the a-priori
// accuracy gate, and the float syrk companion's thread-count determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <random>
#include <vector>

#include "common/error.hpp"
#include "linalg/kernels.hpp"
#include "linalg/thread_pool.hpp"
#include "linalg/tile_graph.hpp"

namespace hprs::linalg {
namespace {

TEST(TileGraphTest, MakeRowTilesCoversRangeWithRaggedTail) {
  const auto tiles = make_row_tiles(10, 23, 100, 5);
  ASSERT_EQ(tiles.size(), 3u);
  EXPECT_EQ(tiles[0].index, 0u);
  EXPECT_EQ(tiles[0].row_begin, 10u);
  EXPECT_EQ(tiles[0].row_end, 15u);
  EXPECT_EQ(tiles[0].bytes, 500u);
  EXPECT_EQ(tiles[1].row_begin, 15u);
  EXPECT_EQ(tiles[1].row_end, 20u);
  EXPECT_EQ(tiles[2].row_begin, 20u);
  EXPECT_EQ(tiles[2].row_end, 23u);  // ragged tail
  EXPECT_EQ(tiles[2].bytes, 300u);
  EXPECT_TRUE(make_row_tiles(7, 7, 100, 5).empty());
  EXPECT_THROW(make_row_tiles(0, 4, 100, 0), Error);
}

TEST(TileGraphTest, ResolveTileRowsPrefersConfiguredThenEnvThenAuto) {
  ::unsetenv("HPRS_TILE_ROWS");
  EXPECT_EQ(resolve_tile_rows(7, 100), 7u);  // explicit config wins
  // Automatic split: at most kAutoTilesPerPartition tiles, never zero rows.
  EXPECT_EQ(resolve_tile_rows(0, 100), 25u);
  EXPECT_EQ(resolve_tile_rows(0, 3), 1u);
  EXPECT_EQ(resolve_tile_rows(0, 0), 1u);
  ::setenv("HPRS_TILE_ROWS", "9", 1);
  EXPECT_EQ(resolve_tile_rows(0, 100), 9u);
  EXPECT_EQ(resolve_tile_rows(7, 100), 7u);  // config still beats env
  ::unsetenv("HPRS_TILE_ROWS");
}

TEST(TileGraphTest, StreamPipelineInterleavesStageAheadOfCompute) {
  // The documented overlap order: the copy for tile k+1 is issued before
  // the kernel for tile k, and the tail drains compute-only.
  const TileGraph g = TileGraph::stream_pipeline(4);
  EXPECT_EQ(g.node_count(), 8u);
  std::vector<std::pair<TileNodeKind, std::size_t>> order;
  g.run([&](const TileNode& n) { order.emplace_back(n.kind, n.tile); });
  const std::vector<std::pair<TileNodeKind, std::size_t>> expected = {
      {TileNodeKind::kStage, 0},   {TileNodeKind::kStage, 1},
      {TileNodeKind::kCompute, 0}, {TileNodeKind::kStage, 2},
      {TileNodeKind::kCompute, 1}, {TileNodeKind::kStage, 3},
      {TileNodeKind::kCompute, 2}, {TileNodeKind::kCompute, 3},
  };
  EXPECT_EQ(order, expected);
}

TEST(TileGraphTest, RunVisitsEveryNodeOnceRespectingEdges) {
  TileGraph g;
  const std::size_t a = g.add_node(TileNodeKind::kCompute, 0, 5);
  const std::size_t b = g.add_node(TileNodeKind::kCompute, 1, 0);
  const std::size_t c = g.add_node(TileNodeKind::kCompute, 2, 1);
  g.add_edge(a, b);  // b must wait for a despite its smaller generation
  std::vector<std::size_t> order;
  g.run([&](const TileNode& n) { order.push_back(n.tile); });
  const std::vector<std::size_t> expected = {2, 0, 1};
  EXPECT_EQ(order, expected);
  (void)c;
}

TEST(TileGraphTest, CycleIsDiagnosed) {
  TileGraph g;
  const std::size_t a = g.add_node(TileNodeKind::kCompute, 0, 0);
  const std::size_t b = g.add_node(TileNodeKind::kCompute, 1, 1);
  g.add_edge(a, b);
  g.add_edge(b, a);
  EXPECT_THROW(g.run([](const TileNode&) {}), Error);
  EXPECT_THROW(g.add_edge(0, 7), Error);
}

TEST(TileStreamTest, ScopedOverrideRestoresTheDefault) {
  const bool before = tile_stream_enabled();
  {
    ScopedTileStream on(true);
    EXPECT_TRUE(tile_stream_enabled());
    {
      ScopedTileStream off(false);
      EXPECT_FALSE(tile_stream_enabled());
    }
    EXPECT_TRUE(tile_stream_enabled());
  }
  EXPECT_EQ(tile_stream_enabled(), before);
}

TEST(MixedPrecisionGateTest, DefaultsOffAndScopedOverrideRestores) {
  const bool before = use_mixed_precision();
  {
    ScopedMixedPrecision on(true);
    EXPECT_TRUE(use_mixed_precision());
  }
  EXPECT_EQ(use_mixed_precision(), before);
}

TEST(MixedPrecisionGateTest, AdmissibilityBoundsChainAndMagnitude) {
  // Benign tile: moderate magnitudes, short chains.
  EXPECT_TRUE(mixed_tile_admissible(1e3, 1024));
  // Chain long enough that eps32 * chain exceeds the relative tolerance.
  EXPECT_FALSE(mixed_tile_admissible(1.0, 200'000));
  // Adversarial magnitude: amax^2 * chain would overflow float headroom.
  EXPECT_FALSE(mixed_tile_admissible(1e17, 64));
  // Degenerate inputs always fall back.
  EXPECT_FALSE(mixed_tile_admissible(std::nan(""), 64));
  EXPECT_FALSE(mixed_tile_admissible(1.0, 0));
}

TEST(MixedPrecisionKernelTest, SyrkF32TracksDoubleWithinGateTolerance) {
  const std::size_t m = 96, n = 12;
  std::mt19937 rng(20010916);
  std::uniform_real_distribution<float> dist(-2.0f, 2.0f);
  std::vector<float> xf(m * n);
  std::vector<double> xd(m * n);
  for (std::size_t i = 0; i < xf.size(); ++i) {
    xf[i] = dist(rng);
    xd[i] = static_cast<double>(xf[i]);
  }
  const std::size_t tri = n * (n + 1) / 2;
  std::vector<double> dtri(tri, 0.0);
  std::vector<float> ftri(tri, 0.0f);
  syrk_tri_update(xd.data(), m, n, dtri.data());
  syrk_tri_update_f32(xf.data(), m, n, ftri.data());
  ASSERT_TRUE(mixed_tile_admissible(2.0, m));
  double max_rel = 0.0;
  for (std::size_t k = 0; k < tri; ++k) {
    const double denom = std::max(1.0, std::abs(dtri[k]));
    max_rel = std::max(
        max_rel, std::abs(static_cast<double>(ftri[k]) - dtri[k]) / denom);
  }
  // The gate admits this tile, so the float result must stay within the
  // gate's promised relative tolerance.
  EXPECT_LT(max_rel, 1e-2);
}

TEST(MixedPrecisionKernelTest, SyrkF32IsThreadCountInvariant) {
  const std::size_t m = 64, n = 23;
  std::mt19937 rng(42);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> x(m * n);
  for (auto& v : x) v = dist(rng);
  const std::size_t tri = n * (n + 1) / 2;
  std::vector<float> one(tri, 0.0f);
  {
    const ScopedKernelThreads threads(1);
    syrk_tri_update_f32(x.data(), m, n, one.data());
  }
  for (const std::size_t t : {2u, 4u, 7u}) {
    std::vector<float> many(tri, 0.0f);
    const ScopedKernelThreads threads(t);
    syrk_tri_update_f32(x.data(), m, n, many.data());
    EXPECT_EQ(one, many) << t << " threads";
  }
}

}  // namespace
}  // namespace hprs::linalg
