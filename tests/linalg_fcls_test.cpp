#include "linalg/fcls.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace hprs::linalg {
namespace {

/// Three well-separated synthetic endmembers on `bands` channels.
Matrix test_endmembers(std::size_t bands) {
  Matrix m(3, bands);
  for (std::size_t b = 0; b < bands; ++b) {
    const double x = static_cast<double>(b) / static_cast<double>(bands - 1);
    m(0, b) = 0.2 + 0.6 * x;                    // upward slope
    m(1, b) = 0.8 - 0.6 * x;                    // downward slope
    m(2, b) = 0.5 + 0.4 * std::sin(6.28 * x);   // oscillating
  }
  return m;
}

std::vector<float> mix(const Matrix& endmembers,
                       std::span<const double> abundances) {
  std::vector<float> px(endmembers.cols(), 0.0f);
  for (std::size_t e = 0; e < endmembers.rows(); ++e) {
    for (std::size_t b = 0; b < endmembers.cols(); ++b) {
      px[b] += static_cast<float>(abundances[e] * endmembers(e, b));
    }
  }
  return px;
}

TEST(UnmixerTest, ConstructionRequiresEndmembers) {
  EXPECT_THROW(Unmixer{Matrix()}, Error);
}

TEST(UnmixerTest, RejectsPixelOfWrongLength) {
  const Unmixer u(test_endmembers(16));
  EXPECT_THROW((void)u.fcls(std::vector<float>(8, 0.0f)), Error);
}

TEST(UnmixerTest, UclsRecoversExactMixture) {
  const Matrix em = test_endmembers(32);
  const Unmixer u(em);
  const std::vector<double> truth = {0.5, 0.3, 0.2};
  const auto r = u.ucls(mix(em, truth));
  for (std::size_t e = 0; e < 3; ++e) {
    EXPECT_NEAR(r.abundances[e], truth[e], 1e-5);
  }
  EXPECT_NEAR(r.error_sq, 0.0, 1e-8);
}

TEST(UnmixerTest, SclsEnforcesSumToOne) {
  const Matrix em = test_endmembers(32);
  const Unmixer u(em);
  Xoshiro256 rng(4);
  std::vector<float> px(32);
  for (auto& v : px) v = static_cast<float>(rng.uniform(0.0, 1.0));
  const auto r = u.scls(px);
  const double sum =
      std::accumulate(r.abundances.begin(), r.abundances.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(UnmixerTest, FclsEnforcesBothConstraints) {
  const Matrix em = test_endmembers(32);
  const Unmixer u(em);
  Xoshiro256 rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<float> px(32);
    for (auto& v : px) v = static_cast<float>(rng.uniform(0.0, 1.2));
    const auto r = u.fcls(px);
    double sum = 0.0;
    for (double a : r.abundances) {
      EXPECT_GE(a, 0.0);
      sum += a;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(UnmixerTest, FclsRecoversFeasibleMixtures) {
  const Matrix em = test_endmembers(48);
  const Unmixer u(em);
  const std::vector<double> truth = {0.7, 0.1, 0.2};
  const auto r = u.fcls(mix(em, truth));
  for (std::size_t e = 0; e < 3; ++e) {
    EXPECT_NEAR(r.abundances[e], truth[e], 1e-5);
  }
  EXPECT_NEAR(r.error_sq, 0.0, 1e-8);
}

TEST(UnmixerTest, FclsClampsInfeasiblePixel) {
  const Matrix em = test_endmembers(32);
  const Unmixer u(em);
  // A pixel equal to endmember 0 scaled by 2 plus the negative of
  // endmember 1 is far outside the simplex; FCLS must still return a
  // feasible abundance vector.
  std::vector<float> px(32);
  for (std::size_t b = 0; b < 32; ++b) {
    px[b] = static_cast<float>(2.0 * em(0, b) - 0.5 * em(1, b));
  }
  const auto r = u.fcls(px);
  double sum = 0.0;
  for (double a : r.abundances) {
    EXPECT_GE(a, 0.0);
    sum += a;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(r.error_sq, 0.0);
}

TEST(UnmixerTest, QuadraticErrorMatchesExplicitReconstruction) {
  const Matrix em = test_endmembers(40);
  const Unmixer u(em);
  Xoshiro256 rng(8);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<float> px(40);
    for (auto& v : px) v = static_cast<float>(rng.uniform(0.0, 1.5));
    const auto r = u.fcls(px);
    const double explicit_err = u.explicit_error_sq(px, r.abundances);
    EXPECT_NEAR(r.error_sq, explicit_err,
                1e-8 * std::max(1.0, explicit_err));
  }
}

TEST(UnmixerTest, SingleEndmemberFclsIsFullAbundance) {
  Matrix em(1, 16);
  for (std::size_t b = 0; b < 16; ++b) em(0, b) = 0.5;
  const Unmixer u(em);
  std::vector<float> px(16, 0.25f);
  const auto r = u.fcls(px);
  ASSERT_EQ(r.abundances.size(), 1u);
  EXPECT_NEAR(r.abundances[0], 1.0, 1e-12);
  // error = ||0.25 - 0.5||^2 over 16 bands = 16 * 0.0625
  EXPECT_NEAR(r.error_sq, 1.0, 1e-6);
}

TEST(UnmixerTest, DependentSignaturesThrow) {
  // Identical rows give an exactly singular Gram matrix.
  Matrix em(2, 4);
  for (std::size_t b = 0; b < 4; ++b) {
    em(0, b) = 1.0;
    em(1, b) = 1.0;
  }
  EXPECT_THROW(Unmixer{em}, Error);
}

struct FclsCase {
  double a0, a1, a2;
};

class FclsAbundanceSweep : public ::testing::TestWithParam<FclsCase> {};

TEST_P(FclsAbundanceSweep, RecoversSimplexPoint) {
  const auto [a0, a1, a2] = GetParam();
  const Matrix em = test_endmembers(64);
  const Unmixer u(em);
  const std::vector<double> truth = {a0, a1, a2};
  const auto r = u.fcls(mix(em, truth));
  EXPECT_NEAR(r.abundances[0], a0, 1e-5);
  EXPECT_NEAR(r.abundances[1], a1, 1e-5);
  EXPECT_NEAR(r.abundances[2], a2, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    SimplexPoints, FclsAbundanceSweep,
    ::testing::Values(FclsCase{1.0, 0.0, 0.0}, FclsCase{0.0, 1.0, 0.0},
                      FclsCase{0.0, 0.0, 1.0}, FclsCase{0.5, 0.5, 0.0},
                      FclsCase{0.34, 0.33, 0.33}, FclsCase{0.9, 0.05, 0.05},
                      FclsCase{0.05, 0.9, 0.05}, FclsCase{0.2, 0.0, 0.8}));

TEST(UnmixerTest, NoisyMixtureErrorScalesWithNoise) {
  const Matrix em = test_endmembers(64);
  const Unmixer u(em);
  const std::vector<double> truth = {0.4, 0.4, 0.2};
  Xoshiro256 rng(21);
  auto px = mix(em, truth);
  double err_clean = u.fcls(px).error_sq;
  for (auto& v : px) v += static_cast<float>(0.01 * rng.normal());
  const double err_noisy = u.fcls(px).error_sq;
  EXPECT_LT(err_clean, err_noisy);
}

}  // namespace
}  // namespace hprs::linalg
