// Table 6: communication (COM), sequential computation (SEQ) and parallel
// computation (PAR) times for every algorithm/network combination.
//
// Paper shapes to hold: PAR dominates COM everywhere; PCT carries the
// largest SEQ component (its sequential eigendecomposition) and MORPH by
// far the smallest; the homogeneous versions' PAR explodes on
// heterogeneous-processor networks.
//
// A second table pins the tiled task-graph runtime's comm/compute overlap:
// PCT and ATDCA on accelerated gangs (simnet::accelerated_now), monolithic
// staging against the streamed per-tile driver
// (core::RunnerConfig::tile_stream).  Streaming must never lose, and wins
// once the accelerated ranks own enough rows for steady-state overlap --
// the narrow 1+3 gang shows the win already at smoke sizes, the wider 2+2
// gang at the full default scene.  With --json <path> (conventionally
// BENCH_stream.json) the comparison is machine-readable.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hprs;
  const std::string json_path = bench::take_json_flag(argc, argv);
  const auto setup = bench::make_setup(argc, argv);
  const auto records = bench::network_sweep(setup);

  TextTable table({"Algorithm", "Network", "COM", "SEQ", "PAR", "Total"});
  for (const auto& rec : records) {
    table.add_row({core::display_name(rec.algorithm, rec.policy), rec.network,
                   TextTable::num(rec.report.com(), 1),
                   TextTable::num(rec.report.seq(), 1),
                   TextTable::num(rec.report.par(), 1),
                   TextTable::num(rec.report.total_time, 1)});
  }
  bench::emit(table, setup.csv,
              "Table 6. Communication (COM), sequential computation (SEQ) "
              "and parallel computation (PAR) times in seconds.");

  obs::RunSummary summary;
  for (const auto& rec : records) {
    obs::add_run_report(summary,
                        "table6." + bench::summary_prefix(rec.algorithm,
                                                          rec.policy,
                                                          rec.network),
                        rec.report);
  }

  // --- streamed tiling vs monolithic staging on accelerated gangs ---------
  struct Gang {
    std::size_t cpus;
    std::size_t accels;
  };
  const std::vector<Gang> gangs = {{1, 3}, {2, 2}};
  TextTable stream_table(
      {"Algorithm", "Gang", "Monolithic", "Streamed", "Win %"});
  std::vector<bench::StreamRecord> stream_records;
  for (const Gang& gang : gangs) {
    const simnet::Platform plat =
        simnet::accelerated_now(gang.cpus, gang.accels);
    for (const auto alg : {core::Algorithm::kPct, core::Algorithm::kAtdca}) {
      auto cfg = setup.config;
      cfg.algorithm = alg;
      const auto mono = core::run_algorithm(plat, setup.scene.cube, cfg);
      cfg.tile_stream = true;
      const auto streamed = core::run_algorithm(plat, setup.scene.cube, cfg);
      bench::StreamRecord srec{core::to_string(alg), gang.cpus, gang.accels,
                               mono.report.total_time,
                               streamed.report.total_time};
      const std::string gang_name = "cpu" + std::to_string(gang.cpus) +
                                    "-acc" + std::to_string(gang.accels);
      stream_table.add_row({srec.algorithm, gang_name,
                            TextTable::num(srec.monolithic_s, 2),
                            TextTable::num(srec.streamed_s, 2),
                            TextTable::num(srec.win_pct(), 2)});
      const std::string prefix =
          "table6.stream." + srec.algorithm + "." + gang_name;
      obs::add_run_report(summary, prefix + ".mono", mono.report);
      obs::add_run_report(summary, prefix + ".tiled", streamed.report);
      stream_records.push_back(std::move(srec));
    }
  }
  bench::emit(stream_table, setup.csv,
              "Streamed tiling vs monolithic staging on accelerated gangs "
              "(virtual seconds; win = makespan saved by per-tile overlap).");
  if (!json_path.empty() &&
      !bench::write_stream_json(json_path, stream_records)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  return bench::write_summary(setup, summary) ? 0 : 1;
}
