// Table 6: communication (COM), sequential computation (SEQ) and parallel
// computation (PAR) times for every algorithm/network combination.
//
// Paper shapes to hold: PAR dominates COM everywhere; PCT carries the
// largest SEQ component (its sequential eigendecomposition) and MORPH by
// far the smallest; the homogeneous versions' PAR explodes on
// heterogeneous-processor networks.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hprs;
  const auto setup = bench::make_setup(argc, argv);
  const auto records = bench::network_sweep(setup);

  TextTable table({"Algorithm", "Network", "COM", "SEQ", "PAR", "Total"});
  for (const auto& rec : records) {
    table.add_row({core::display_name(rec.algorithm, rec.policy), rec.network,
                   TextTable::num(rec.report.com(), 1),
                   TextTable::num(rec.report.seq(), 1),
                   TextTable::num(rec.report.par(), 1),
                   TextTable::num(rec.report.total_time, 1)});
  }
  bench::emit(table, setup.csv,
              "Table 6. Communication (COM), sequential computation (SEQ) "
              "and parallel computation (PAR) times in seconds.");
  return 0;
}
