// Scene-service traffic benchmark (the serving story the workflow papers
// benchmark: Paraskevakos 2019's task-parallel pipelines vs Al-Saadi
// 2020's bag-of-jobs fan-out, here over the paper's NOW platforms).
//
// Three cell families, all on the fully heterogeneous NOW:
//
//  * diurnal -- a --jobs-request diurnal trace from the skewed three-tenant
//    mix, served once per executor mode.  The per-tenant SLA documents of
//    the two modes must be character-identical (the service plane is
//    virtual-time only); any drift is a hard failure.
//  * mix_nobatch / mix_batch -- the shared-scene tenant mix served without
//    and with compute-once batching.  Batching must strictly win the
//    stream makespan (the survey tenant keeps asking one question).
//  * taskpar / bagofjobs -- the same trace as task-parallel gangs (each
//    request at its requested width) vs a bag of width-1 jobs, reproducing
//    the two workflow designs' wait/slowdown trade-off at thousands of
//    requests.
//
// All numbers are virtual time: every cell is bit-identical across runs
// and executor modes; the JSON twin (--json BENCH_serve.json) makes them
// machine-checkable.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "serve/service.hpp"
#include "serve/traffic.hpp"

namespace {

using namespace hprs;

/// Peels "--<name> <value>" out of argv (make_setup rejects flags it does
/// not know); returns `fallback` when absent.
double take_double_flag(int& argc, char** argv, const std::string& name,
                        double fallback) {
  double value = fallback;
  int out = 0;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--" + name && i + 1 < argc) {
      value = std::stod(argv[++i]);
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  return value;
}

/// The tenant-mix trace every cell family serves, shrunk to test-scale
/// algorithm parameters so a request costs milliseconds of virtual time.
std::vector<sched::JobSpec> make_trace(serve::TrafficShape shape,
                                       std::size_t jobs, double duration_s,
                                       int max_ranks) {
  serve::TraceConfig config;
  config.shape = shape;
  config.jobs = jobs;
  config.duration_s = duration_s;
  config.seed = 20010916;
  config.tenants = serve::default_tenant_mix();
  for (serve::TenantProfile& tenant : config.tenants) {
    tenant.targets = 4;
    tenant.classes = 3;
    tenant.skewers = 32;
    tenant.max_ranks = std::min(tenant.max_ranks, max_ranks);
    tenant.min_ranks = std::min(tenant.min_ranks, tenant.max_ranks);
  }
  return serve::generate_trace(config);
}

vmpi::Options mode_options(vmpi::ExecMode mode) {
  vmpi::Options options;
  options.exec_mode = mode;
  return options;
}

const char* mode_name(vmpi::ExecMode mode) {
  return mode == vmpi::ExecMode::kBoundedExecutor ? "executor" : "threads";
}

/// Stream-wide wait / slowdown percentiles of one service run.
bench::ServeRecord make_record(const std::string& scenario,
                               const std::string& mode,
                               const serve::ServiceResult& result) {
  std::vector<double> waits;
  std::vector<double> slowdowns;
  for (const sched::JobRecord& record : result.schedule.records) {
    if (!record.completed()) continue;
    waits.push_back(record.queue_wait_s());
    const double makespan = record.makespan_s();
    slowdowns.push_back(
        makespan > 0.0 ? (record.queue_wait_s() + makespan) / makespan : 1.0);
  }
  bench::ServeRecord rec;
  rec.scenario = scenario;
  rec.mode = mode;
  rec.makespan_s = result.schedule.makespan_s;
  rec.utilization = result.schedule.utilization;
  rec.wait_p50_s = serve::percentile(waits, 0.50);
  rec.wait_p95_s = serve::percentile(waits, 0.95);
  rec.slowdown_p95 = serve::percentile(slowdowns, 0.95);
  rec.completed = result.schedule.completed();
  rec.rejected = result.schedule.rejected();
  rec.riders = result.batches.riders;
  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::take_json_flag(argc, argv);
  const auto jobs = static_cast<std::size_t>(
      take_double_flag(argc, argv, "jobs", 1000));
  const double duration_s = take_double_flag(argc, argv, "duration", 600.0);
  const auto setup = bench::make_setup(argc, argv);

  const auto networks = bench::paper_networks();
  const auto net = std::find_if(
      networks.begin(), networks.end(), [](const simnet::Platform& n) {
        return n.name() == "fully-heterogeneous";
      });
  if (net == networks.end()) {
    std::fprintf(stderr, "bench_serve_traffic: no fully-heterogeneous "
                         "network in paper_networks()\n");
    return 1;
  }
  const int pool = static_cast<int>(net->size()) - 1;
  int status = 0;
  std::vector<bench::ServeRecord> records;
  TextTable table({"Scenario", "Mode", "Makespan (s)", "Util", "Wait p50 (s)",
                   "Wait p95 (s)", "Slow p95", "Done", "Riders"});
  const auto add = [&records, &table](const bench::ServeRecord& rec,
                                      std::size_t total) {
    records.push_back(rec);
    table.add_row({rec.scenario, rec.mode, TextTable::num(rec.makespan_s, 3),
                   TextTable::num(rec.utilization, 3),
                   TextTable::num(rec.wait_p50_s, 3),
                   TextTable::num(rec.wait_p95_s, 3),
                   TextTable::num(rec.slowdown_p95, 3),
                   std::to_string(rec.completed) + "/" +
                       std::to_string(total),
                   std::to_string(rec.riders)});
  };

  // -- diurnal SLA cell: both executor modes, SLA plane bit-identical ----
  const auto diurnal = make_trace(serve::TrafficShape::kDiurnal, jobs,
                                  duration_s, std::min(pool, 6));
  serve::ServiceConfig sla_config;
  sla_config.batching = true;
  sla_config.quotas["adhoc"].max_inflight_ranks = 2 * std::min(pool, 6);
  sla_config.record_metrics = false;
  std::string sla_doc[2];
  for (const auto mode : {vmpi::ExecMode::kBoundedExecutor,
                          vmpi::ExecMode::kThreadPerRank}) {
    const auto result = serve::run_service(*net, setup.scene.cube, diurnal,
                                           sla_config, mode_options(mode));
    obs::RunSummary sla;
    serve::add_sla_summary(sla, "serve.diurnal", result);
    sla_doc[mode == vmpi::ExecMode::kThreadPerRank ? 1 : 0] = sla.to_json();
    add(make_record("diurnal", mode_name(mode), result), diurnal.size());
  }
  if (sla_doc[0] != sla_doc[1]) {
    std::fprintf(stderr,
                 "bench_serve_traffic: per-tenant SLA reports differ "
                 "between executor modes\n");
    status = 1;
  }

  // -- batching cell: compute-once must win the shared-scene mix ---------
  // Compressed span: the batching story needs concurrent shared-scene
  // requests, so the mix arrives an order of magnitude hotter than the
  // diurnal trace.
  const std::size_t mix_jobs = std::max<std::size_t>(jobs / 2, 8);
  const auto mix = make_trace(serve::TrafficShape::kTenantMix, mix_jobs,
                              0.05 * duration_s, std::min(pool, 6));
  serve::ServiceConfig mix_config;
  mix_config.record_metrics = false;
  serve::ServiceConfig batch_config = mix_config;
  batch_config.batching = true;
  const auto nobatch =
      serve::run_service(*net, setup.scene.cube, mix, mix_config);
  const auto batch =
      serve::run_service(*net, setup.scene.cube, mix, batch_config);
  add(make_record("mix_nobatch", "executor", nobatch), mix.size());
  add(make_record("mix_batch", "executor", batch), mix.size());
  std::printf("tenant-mix: batch/nobatch makespan %.3f/%.3f s (%.2fx), "
              "%zu riders\n",
              batch.schedule.makespan_s, nobatch.schedule.makespan_s,
              batch.schedule.makespan_s > 0.0
                  ? nobatch.schedule.makespan_s / batch.schedule.makespan_s
                  : 0.0,
              batch.batches.riders);
  if (batch.schedule.makespan_s >= nobatch.schedule.makespan_s ||
      batch.batches.riders == 0) {
    std::fprintf(stderr, "bench_serve_traffic: batching failed to beat "
                         "no-batching on the shared-scene mix\n");
    status = 1;
  }

  // -- workflow-design cell: task-parallel gangs vs a bag of jobs --------
  auto bag = mix;
  for (sched::JobSpec& spec : bag) spec.ranks = 1;
  const auto taskpar =
      serve::run_service(*net, setup.scene.cube, mix, mix_config);
  const auto bagofjobs =
      serve::run_service(*net, setup.scene.cube, bag, mix_config);
  add(make_record("taskpar", "executor", taskpar), mix.size());
  add(make_record("bagofjobs", "executor", bagofjobs), bag.size());

  bench::emit(table, setup.csv,
              "Scene-service traffic. Tenant-mix traces on the fully "
              "heterogeneous NOW (virtual time).");

  if (!json_path.empty() && !bench::write_serve_json(json_path, records)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }

  obs::RunSummary summary;
  for (const auto& rec : records) {
    const std::string prefix = "serve." + rec.scenario + "." + rec.mode;
    summary.set_number(prefix + ".makespan_s", rec.makespan_s);
    summary.set_number(prefix + ".utilization", rec.utilization);
    summary.set_number(prefix + ".wait_p50_s", rec.wait_p50_s);
    summary.set_number(prefix + ".wait_p95_s", rec.wait_p95_s);
    summary.set_number(prefix + ".slowdown_p95", rec.slowdown_p95);
    summary.set_count(prefix + ".completed", rec.completed);
    summary.set_count(prefix + ".rejected", rec.rejected);
    summary.set_count(prefix + ".riders", rec.riders);
  }
  if (!bench::write_summary(setup, summary)) return 1;
  return status;
}
