// Tables 1 and 2 of the paper: the heterogeneous platform description, plus
// the Lastovetsky-Reddy equivalence report for the four networks.  These are
// inputs to every other experiment; printing them verifies the encoded
// platform model against the published specification.
#include <cstdio>

#include "bench_common.hpp"
#include "simnet/equivalence.hpp"

int main(int, char**) {
  using namespace hprs;
  const simnet::Platform het = simnet::fully_heterogeneous();

  TextTable table1({"Processor", "Architecture", "Cycle-time (s/Mflop)",
                    "Memory (MB)", "Cache (KB)", "Segment"});
  for (std::size_t i = 0; i < het.size(); ++i) {
    const auto& p = het.processor(i);
    table1.add_row({p.name, p.architecture, TextTable::num(p.cycle_time, 4),
                    TextTable::num(static_cast<long long>(p.memory_mb)),
                    TextTable::num(static_cast<long long>(p.cache_kb)),
                    "s" + std::to_string(p.segment + 1)});
  }
  bench::emit(table1, false, "Table 1. Specifications of heterogeneous processors.");

  TextTable table2({"Segment", "s1", "s2", "s3", "s4"});
  for (std::size_t a = 0; a < 4; ++a) {
    std::vector<std::string> row = {"s" + std::to_string(a + 1)};
    // Representative processors per segment: 0, 4, 8, 10.
    const std::size_t reps[4] = {0, 4, 8, 10};
    for (std::size_t b = 0; b < 4; ++b) {
      row.push_back(TextTable::num(het.link_ms_per_mbit(reps[a], reps[b])));
    }
    table2.add_row(row);
  }
  bench::emit(table2, false,
              "\nTable 2. Capacity of communication links "
              "(ms per one-megabit message).");

  std::printf("\nEquivalence of the experimental networks "
              "(Lastovetsky-Reddy principles):\n");
  for (const auto& net : bench::paper_networks()) {
    const auto rep = simnet::check_equivalence(het, net, 0.05);
    std::printf("  vs %-26s %s\n", net.name().c_str(),
                rep.to_string().c_str());
  }
  std::printf("\nAggregate characteristics:\n");
  for (const auto& net : bench::paper_networks()) {
    std::printf(
        "  %-26s avg speed %7.1f Mflop/s   avg link %6.2f ms/mbit   "
        "speed spread %5.2fx   link spread %5.2fx\n",
        net.name().c_str(), net.average_speed(),
        net.average_link_ms_per_mbit(), net.speed_heterogeneity(),
        net.link_heterogeneity());
  }
  return 0;
}
