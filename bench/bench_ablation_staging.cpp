// Ablation: what would shipping the image cube from the master over the
// measured links cost?  The paper's reported times are only consistent with
// pre-staged image data (see DESIGN.md); this bench quantifies the
// difference and shows the communication-aware WEA softening the blow.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hprs;
  const auto setup = bench::make_setup(argc, argv);

  TextTable table({"Network", "Pre-staged (s)", "Staged hetero (s)",
                   "Staged homo (s)", "Staging penalty"});
  for (const auto& net : bench::paper_networks()) {
    auto cfg = setup.config;
    cfg.algorithm = core::Algorithm::kAtdca;
    cfg.charge_data_staging = false;
    const auto base = core::run_algorithm(net, setup.scene.cube, cfg);
    cfg.charge_data_staging = true;
    const auto staged_het = core::run_algorithm(net, setup.scene.cube, cfg);
    cfg.policy = core::PartitionPolicy::kHomogeneous;
    const auto staged_homo = core::run_algorithm(net, setup.scene.cube, cfg);
    table.add_row({net.name(), TextTable::num(base.report.total_time, 0),
                   TextTable::num(staged_het.report.total_time, 0),
                   TextTable::num(staged_homo.report.total_time, 0),
                   TextTable::num(staged_het.report.total_time /
                                      base.report.total_time,
                                  2)});
  }
  bench::emit(table, setup.csv,
              "Ablation: charging full image distribution over the "
              "network vs pre-staged data (ATDCA).");
  return 0;
}
