// Figure 2: speedup curves of the heterogeneous algorithms on Thunderhead
// (multi-processor time over single-processor time), printed both as a
// table of series and as an ASCII plot.
//
// Paper shapes to hold: Hetero-MORPH scales best and Hetero-PCT worst
// (sequential eigendecomposition); ATDCA scales slightly better than UFCLS.
#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hprs;
  const auto setup = bench::make_setup(argc, argv, /*default_rows=*/1067,
                                       /*default_cols=*/32,
                                       /*default_replication=*/32);

  // Measure the speedup series.
  std::map<core::Algorithm, std::vector<double>> speedups;
  for (const auto alg : bench::all_algorithms()) {
    auto cfg = setup.config;
    cfg.algorithm = alg;
    double t1 = 0.0;
    for (const std::size_t cpus : bench::thunderhead_cpus()) {
      const auto out = core::run_algorithm(simnet::thunderhead(cpus),
                                           setup.scene.cube, cfg);
      if (cpus == 1) t1 = out.report.total_time;
      speedups[alg].push_back(t1 / out.report.total_time);
    }
  }

  std::vector<std::string> header = {"CPUs"};
  for (const auto alg : bench::all_algorithms()) {
    header.push_back(std::string("Hetero-") + core::to_string(alg));
  }
  TextTable table(std::move(header));
  const auto& cpus = bench::thunderhead_cpus();
  for (std::size_t i = 0; i < cpus.size(); ++i) {
    std::vector<std::string> row = {
        TextTable::num(static_cast<long long>(cpus[i]))};
    for (const auto alg : bench::all_algorithms()) {
      row.push_back(TextTable::num(speedups[alg][i], 1));
    }
    table.add_row(std::move(row));
  }
  bench::emit(table, setup.csv,
              "Figure 2. Speedups of the heterogeneous algorithms on "
              "Thunderhead (series data).");

  if (!setup.csv) {
    // ASCII rendering of the figure: speedup vs CPUs, one glyph per
    // algorithm, with the ideal diagonal for reference.
    constexpr int kRows = 24;
    constexpr int kCols = 72;
    const double max_speedup = 256.0;
    std::vector<std::string> canvas(kRows, std::string(kCols, ' '));
    const auto to_col = [&](double cpu) {
      return std::min<int>(
          kCols - 1, static_cast<int>(cpu / 256.0 * (kCols - 1)));
    };
    const auto to_row = [&](double s) {
      return std::max(
          0, kRows - 1 -
                 static_cast<int>(s / max_speedup * (kRows - 1)));
    };
    for (const std::size_t c : bench::thunderhead_cpus()) {
      canvas[static_cast<std::size_t>(to_row(static_cast<double>(c)))]
            [static_cast<std::size_t>(to_col(static_cast<double>(c)))] = '.';
    }
    const char glyph[4] = {'A', 'U', 'P', 'M'};
    for (std::size_t a = 0; a < bench::all_algorithms().size(); ++a) {
      const auto alg = bench::all_algorithms()[a];
      for (std::size_t i = 0; i < cpus.size(); ++i) {
        canvas[static_cast<std::size_t>(to_row(speedups[alg][i]))]
              [static_cast<std::size_t>(
                  to_col(static_cast<double>(cpus[i])))] = glyph[a];
      }
    }
    std::printf("\nspeedup (max %.0f)   A=ATDCA U=UFCLS P=PCT M=MORPH "
                ".=ideal\n",
                max_speedup);
    for (const auto& line : canvas) {
      std::printf("|%s\n", line.c_str());
    }
    std::printf("+%s> CPUs (0..256)\n", std::string(kCols, '-').c_str());
  }
  return 0;
}
