// Table 4: per-class classification accuracy of Hetero-PCT and Hetero-MORPH
// against the USGS dust/debris ground truth, with single-processor times in
// parentheses.
//
// Note on the published table: the MORPH column of the printed Table 4 is
// corrupted (it repeats Table 3's SAD values); the text states the actual
// result -- MORPH exceeds 93% accuracy and beats PCT (~80% overall) on
// every class -- and that is the shape regenerated here.
#include <cstdio>

#include "bench_common.hpp"
#include "hsi/accuracy.hpp"

int main(int argc, char** argv) {
  using namespace hprs;
  auto setup = bench::make_setup(argc, argv);
  const auto& scene = setup.scene;
  const auto debris = hsi::debris_materials();

  struct Column {
    hsi::ClassificationScore score;
    double sequential_seconds = 0;
  };
  std::vector<Column> columns;
  for (const auto alg : {core::Algorithm::kPct, core::Algorithm::kMorph}) {
    auto cfg = setup.config;
    cfg.algorithm = alg;
    const auto out =
        core::run_algorithm(simnet::fully_heterogeneous(), scene.cube, cfg);
    Column col;
    col.score = hsi::score_classification(out.labels, out.label_count,
                                          scene.truth, debris);
    col.sequential_seconds =
        core::run_algorithm(simnet::thunderhead(1), scene.cube, cfg)
            .report.total_time;
    columns.push_back(std::move(col));
  }

  TextTable table(
      {"Dust/debris class",
       "Hetero-PCT (" + TextTable::num(columns[0].sequential_seconds, 0) +
           ")",
       "Hetero-MORPH (" + TextTable::num(columns[1].sequential_seconds, 0) +
           ")"});
  for (std::size_t k = 0; k < debris.size(); ++k) {
    table.add_row({hsi::to_string(debris[k]),
                   TextTable::num(columns[0].score.per_class_pct[k]),
                   TextTable::num(columns[1].score.per_class_pct[k])});
  }
  table.add_row({"Overall", TextTable::num(columns[0].score.overall_pct),
                 TextTable::num(columns[1].score.overall_pct)});
  bench::emit(table, setup.csv,
              "Table 4. Classification accuracies (percent) for the USGS "
              "dust/debris classes (single-processor seconds in "
              "parentheses).");
  return 0;
}
