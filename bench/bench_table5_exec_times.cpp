// Table 5: execution times (simulated seconds) of the heterogeneous
// algorithms and their homogeneous versions on the four networks.
//
// Paper shapes to hold: Hetero-X is nearly flat across all four networks;
// Homo-X collapses on the (fully or partially) heterogeneous-processor
// networks; on the fully homogeneous network the two versions coincide.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hprs;
  const auto setup = bench::make_setup(argc, argv);
  const auto records = bench::network_sweep(setup);

  TextTable table({"Algorithm", "Fully heterogeneous", "Fully homogeneous",
                   "Partially heterogeneous", "Partially homogeneous"});
  for (std::size_t i = 0; i < records.size(); i += 4) {
    table.add_row({core::display_name(records[i].algorithm, records[i].policy),
                   TextTable::num(records[i].report.total_time, 0),
                   TextTable::num(records[i + 1].report.total_time, 0),
                   TextTable::num(records[i + 2].report.total_time, 0),
                   TextTable::num(records[i + 3].report.total_time, 0)});
  }
  bench::emit(table, setup.csv,
              "Table 5. Execution times (seconds) of heterogeneous "
              "algorithms and their homogeneous versions.");

  obs::RunSummary summary;
  for (const auto& rec : records) {
    obs::add_run_report(summary,
                          "table5." + bench::summary_prefix(rec.algorithm,
                                                            rec.policy,
                                                            rec.network),
                          rec.report);
  }
  return bench::write_summary(setup, summary) ? 0 : 1;
}
