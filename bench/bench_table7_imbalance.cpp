// Table 7: load-balancing rates D = R_max / R_min over the per-processor
// busy times, with (D_all) and without (D_minus) the root processor.
//
// Paper shapes to hold: the heterogeneous algorithms sit near-perfect
// balance (D_all close to 1, MORPH closest); the homogeneous versions are
// clearly imbalanced whenever processors are heterogeneous; excluding the
// root improves balance for the master-heavy algorithms.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hprs;
  const auto setup = bench::make_setup(argc, argv);
  const auto records = bench::network_sweep(setup);

  TextTable table({"Algorithm", "Network", "D_all", "D_minus"});
  for (const auto& rec : records) {
    table.add_row({core::display_name(rec.algorithm, rec.policy), rec.network,
                   TextTable::num(rec.report.imbalance_all(), 2),
                   TextTable::num(rec.report.imbalance_minus_root(), 2)});
  }
  bench::emit(table, setup.csv,
              "Table 7. Load balancing rates for the heterogeneous "
              "algorithms and their homogeneous versions.");

  obs::RunSummary summary;
  for (const auto& rec : records) {
    obs::add_run_report(summary,
                          "table7." + bench::summary_prefix(rec.algorithm,
                                                            rec.policy,
                                                            rec.network),
                          rec.report);
  }
  return bench::write_summary(setup, summary) ? 0 : 1;
}
