// Engine host-runtime scaling: how much wall time the *host* spends
// simulating a communication-bound program, by rank count and execution
// mode.  The workload is rounds of {compute, bcast, gather, pairwise
// send/recv, barrier} with negligible numeric work, so nearly all of the
// measured time is engine cost: scheduling, wakeups, payload fan-out.
// This is the benchmark behind the README's engine-scaling numbers (the
// table-8 cells measure whole algorithm runs, where the paper's real
// numerics dominate the host time at every p).
//
// Virtual time is printed alongside as a cross-check: it must be identical
// across modes (and across engine versions -- the cost model is frozen).
//
// Usage: bench_engine_scaling [--rounds N] [--csv]
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "simnet/platform.hpp"
#include "vmpi/comm.hpp"
#include "vmpi/engine.hpp"

namespace {

/// Uniform p-rank single-segment platform (the workload is about engine
/// cost, not partitioning, so heterogeneity adds nothing here).
hprs::simnet::Platform uniform_platform(std::size_t p) {
  std::vector<hprs::simnet::ProcessorSpec> procs;
  procs.reserve(p);
  for (std::size_t i = 0; i < p; ++i) {
    procs.push_back(hprs::simnet::ProcessorSpec{"p" + std::to_string(i),
                                                "bench", 0.001, 1024, 512, 0});
  }
  return hprs::simnet::Platform("engine-scaling", std::move(procs), {{10.0}});
}

void workload(hprs::vmpi::Comm& comm, int rounds) {
  const int r = comm.rank();
  const int n = comm.size();
  for (int k = 0; k < rounds; ++k) {
    comm.compute(100);
    std::vector<double> payload;
    if (r == comm.root()) payload.assign(1024, 1.0);
    const auto view = comm.bcast_shared(comm.root(), std::move(payload),
                                        1024 * sizeof(double));
    const auto gathered =
        comm.gather(comm.root(), (*view)[0] + r, sizeof(double));
    const int peer = (r % 2 == 0) ? r + 1 : r - 1;
    if (peer >= 0 && peer < n) {
      if (r % 2 == 0) {
        comm.send(peer, static_cast<double>(k), sizeof(double), 1);
        (void)comm.recv<double>(peer, 2);
      } else {
        (void)comm.recv<double>(peer, 1);
        comm.send(peer, static_cast<double>(k), sizeof(double), 2);
      }
    }
    comm.barrier();
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hprs;
  const CliArgs args(argc, argv, {"rounds", "csv"});
  const int rounds = static_cast<int>(args.get_int("rounds", 40));
  const bool csv = args.get_bool("csv", false);

  TextTable table({"Ranks", "Executor (s)", "ThreadPerRank (s)", "Speedup",
                   "Virtual (s)"});
  for (const std::size_t p : {std::size_t{16}, std::size_t{64},
                              std::size_t{256}}) {
    double host[2] = {0.0, 0.0};
    double virt[2] = {0.0, 0.0};
    const vmpi::ExecMode modes[2] = {vmpi::ExecMode::kBoundedExecutor,
                                     vmpi::ExecMode::kThreadPerRank};
    for (int m = 0; m < 2; ++m) {
      vmpi::Options opts;
      opts.exec_mode = modes[m];
      vmpi::Engine engine(uniform_platform(p), opts);
      const auto t0 = std::chrono::steady_clock::now();
      const auto report =
          engine.run([&](vmpi::Comm& comm) { workload(comm, rounds); });
      const std::chrono::duration<double> dt =
          std::chrono::steady_clock::now() - t0;
      host[m] = dt.count();
      virt[m] = report.total_time;
    }
    if (virt[0] != virt[1]) {
      std::fprintf(stderr, "virtual-time mismatch at p=%zu: %.9f vs %.9f\n",
                   p, virt[0], virt[1]);
      return 1;
    }
    table.add_row({TextTable::num(static_cast<long long>(p)),
                   TextTable::num(host[0], 3), TextTable::num(host[1], 3),
                   TextTable::num(host[1] / host[0], 1),
                   TextTable::num(virt[0], 3)});
  }
  std::printf("Engine host runtime, %d communication rounds per rank.\n",
              rounds);
  if (csv) {
    std::printf("%s", table.to_csv().c_str());
  } else {
    std::printf("%s", table.to_string().c_str());
  }
  return 0;
}
