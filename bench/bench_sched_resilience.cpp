// Recovery cost of the resilient scheduler (paper Sect. 9: fault tolerance
// on networks of workstations): what does a gang-leader crash cost with
// checkpoint resume versus a cold restart?
//
// One long ATDCA job runs on a six-rank gang of the fully heterogeneous
// NOW under four scenarios: fault-free with periodic gang checkpoints
// ("resume_clean"), the same run with the gang leader crashed at 80% of
// the job ("resume_crash"), and the pair again with the checkpoint store
// disabled ("cold_clean" / "cold_crash") so the retry recomputes from
// zero.  Each faulty scenario's outputs are compared bit for bit against
// an uninterrupted solo run of the job's fault-tolerant program on the
// gang whose WEA partition froze the chunk list -- the first attempt's
// gang when checkpoints carried the chunks forward, the final attempt's
// gang after a cold restart.
//
// Shape to hold: both faulty runs complete with bit-identical outputs,
// and checkpoint resume strictly beats cold restart -- on the faulty
// makespan outright, and on the recovery overhead (faulty minus clean
// makespan) even after paying for every checkpoint write.  All numbers
// are virtual time, so every cell is bit-identical across runs and
// executor modes; the JSON twin (--json BENCH_resilience.json) makes
// them machine-checkable.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/ft.hpp"
#include "sched/resilience.hpp"
#include "sched/scheduler.hpp"
#include "vmpi/comm.hpp"
#include "vmpi/engine.hpp"

namespace {

using namespace hprs;

/// The single long job of the bench: ATDCA with one phase boundary per
/// target, wide enough to be resized after a leader loss.
std::vector<sched::JobSpec> make_stream(const bench::BenchSetup& setup) {
  sched::JobSpec spec;
  spec.id = 1;
  spec.algorithm = sched::JobAlgorithm::kAtdca;
  spec.arrival_s = 0.0;
  spec.ranks = 6;
  spec.targets = std::min<std::size_t>(setup.config.targets, 18);
  spec.replication = setup.config.replication;
  return {spec};
}

/// The output oracle: the job's fault-tolerant program run solo and
/// uninterrupted on `members` (tests/sched_resilience_test.cpp uses the
/// same construction).
sched::JobOutput run_solo_ft(const simnet::Platform& platform,
                             const hsi::HsiCube& scene,
                             const sched::JobSpec& spec,
                             const std::vector<int>& members) {
  sched::JobOutput out;
  vmpi::Engine engine(platform, {});
  engine.run([&](vmpi::Comm& world) {
    if (std::find(members.begin(), members.end(), world.rank()) ==
        members.end()) {
      return;
    }
    vmpi::Comm sub = world.subset(members, spec.id);
    sched::ProgramBundle bundle = sched::make_job_program(spec, scene);
    core::ft::run_program(sub, scene, bundle.program);
    if (sub.is_root()) bundle.harvest(out);
  });
  return out;
}

bool outputs_equal(const sched::JobOutput& a, const sched::JobOutput& b) {
  return a.targets == b.targets && a.scores == b.scores &&
         a.labels == b.labels && a.label_count == b.label_count;
}

/// Condenses one schedule into a bench record; `clean_makespan_s < 0`
/// marks a clean scenario (no overhead to report).
bench::ResilienceRecord condense(const std::string& scenario,
                                 const sched::ScheduleResult& result,
                                 double clean_makespan_s,
                                 bool outputs_match) {
  const sched::JobRecord& record = result.records.front();
  bench::ResilienceRecord rec;
  rec.scenario = scenario;
  rec.makespan_s = result.makespan_s;
  rec.recovery_overhead_s =
      clean_makespan_s >= 0.0 ? result.makespan_s - clean_makespan_s : 0.0;
  rec.attempts = record.attempts.size();
  for (const auto& attempt : record.attempts) {
    rec.checkpoints += attempt.checkpoints;
  }
  rec.resumed_seq =
      record.attempts.empty() ? 0 : record.attempts.back().resumed_seq;
  rec.outputs_match = outputs_match;
  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::take_json_flag(argc, argv);
  const auto setup = bench::make_setup(argc, argv);
  const simnet::Platform net = simnet::fully_heterogeneous();
  const std::vector<sched::JobSpec> stream = make_stream(setup);
  const hsi::HsiCube& scene = setup.scene.cube;

  // Calibrate the checkpoint cadence to roughly eight commits per run
  // (virtual time is deterministic, so the calibration run and the clean
  // run agree exactly), then derive the crash instant -- the gang leader
  // dies at 80% of the job -- from the clean run of each mode separately:
  // the cold mode pays no checkpoint charges, so its timeline differs.
  // The crash lands late on purpose: OSP phases get costlier as the
  // target set grows, and the resumed gang inherits a chunk partition
  // sized for the dead gang's speeds, so an early crash would leave the
  // replay with little to save while the cold restart re-balances.
  sched::SchedulerConfig resume_cfg;
  resume_cfg.resilience.enabled = true;
  const auto calib = sched::run_schedule(net, scene, stream, resume_cfg);
  if (calib.completed() != 1) {
    std::fprintf(stderr, "bench_sched_resilience: calibration run failed\n");
    return 1;
  }
  resume_cfg.resilience.checkpoint_interval_s =
      calib.records.front().makespan_s() / 8.0;

  sched::SchedulerConfig cold_cfg = resume_cfg;
  cold_cfg.resilience.resume_from_checkpoint = false;

  std::vector<bench::ResilienceRecord> records;
  TextTable table({"Scenario", "Makespan (s)", "Overhead (s)", "Attempts",
                   "Checkpoints", "Resumed", "Outputs"});
  const auto add = [&](const bench::ResilienceRecord& rec) {
    records.push_back(rec);
    table.add_row({rec.scenario, TextTable::num(rec.makespan_s, 4),
                   TextTable::num(rec.recovery_overhead_s, 4),
                   std::to_string(rec.attempts),
                   std::to_string(rec.checkpoints),
                   std::to_string(rec.resumed_seq),
                   rec.outputs_match ? "bit-identical" : "MISMATCH"});
  };

  int status = 0;
  double clean_makespan[2] = {0.0, 0.0};
  double crash_makespan[2] = {0.0, 0.0};
  const sched::SchedulerConfig* configs[2] = {&resume_cfg, &cold_cfg};
  const char* mode_name[2] = {"resume", "cold"};
  for (int m = 0; m < 2; ++m) {
    const auto clean = sched::run_schedule(net, scene, stream, *configs[m]);
    const sched::JobRecord& job = clean.records.front();
    if (!job.completed()) {
      std::fprintf(stderr, "bench_sched_resilience: %s_clean failed: %s\n",
                   mode_name[m], job.error.c_str());
      return 1;
    }
    const sched::JobOutput clean_solo =
        run_solo_ft(net, scene, stream.front(), job.members);
    add(condense(std::string(mode_name[m]) + "_clean", clean, -1.0,
                 outputs_equal(clean.outputs.front(), clean_solo)));
    clean_makespan[m] = clean.makespan_s;

    vmpi::Options faulty;
    faulty.fault_plan.crashes.push_back(
        {job.members.front(), job.dispatch_s + 0.8 * job.makespan_s()});
    const auto crashed =
        sched::run_schedule(net, scene, stream, *configs[m], faulty);
    const sched::JobRecord& rec = crashed.records.front();
    if (!rec.completed() || rec.attempts.size() < 2) {
      std::fprintf(stderr,
                   "bench_sched_resilience: %s_crash did not retry to "
                   "completion (%s)\n",
                   mode_name[m], rec.error.c_str());
      status = 1;
    }
    // Resume mode carries attempt 1's frozen chunks through the
    // checkpoint; a cold restart re-partitions on the final gang.
    const std::vector<int>& chunk_owners = m == 0
                                               ? rec.attempts.front().members
                                               : rec.attempts.back().members;
    const sched::JobOutput crash_solo =
        run_solo_ft(net, scene, stream.front(), chunk_owners);
    const bool match = outputs_equal(crashed.outputs.front(), crash_solo);
    add(condense(std::string(mode_name[m]) + "_crash", crashed,
                 clean_makespan[m], match));
    crash_makespan[m] = crashed.makespan_s;
    if (!match) {
      std::fprintf(stderr,
                   "bench_sched_resilience: %s_crash outputs diverged from "
                   "the uninterrupted solo run\n",
                   mode_name[m]);
      status = 1;
    }
  }

  bench::emit(table, setup.csv,
              "Scheduler resilience. One six-rank ATDCA job on the fully "
              "heterogeneous NOW: leader crash at 80%, checkpoint resume vs "
              "cold restart (virtual time).");

  // The recovery-cost contract: resume must beat cold restart on the
  // faulty makespan outright AND on the recovery overhead (so the win is
  // real even after paying for every checkpoint write).
  const double resume_overhead = crash_makespan[0] - clean_makespan[0];
  const double cold_overhead = crash_makespan[1] - clean_makespan[1];
  std::printf(
      "leader crash at 80%%: resume %.4f s (+%.4f), cold restart %.4f s "
      "(+%.4f) -- resume saves %.2fx the overhead\n",
      crash_makespan[0], resume_overhead, crash_makespan[1], cold_overhead,
      resume_overhead > 0.0 ? cold_overhead / resume_overhead : 0.0);
  if (crash_makespan[0] >= crash_makespan[1] ||
      resume_overhead >= cold_overhead) {
    std::fprintf(stderr,
                 "bench_sched_resilience: checkpoint resume failed to beat "
                 "cold restart\n");
    status = 1;
  }

  if (!json_path.empty() &&
      !bench::write_resilience_json(json_path, records)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }

  obs::RunSummary summary;
  for (const auto& rec : records) {
    const std::string prefix = "resilience." + rec.scenario;
    summary.set_number(prefix + ".makespan_s", rec.makespan_s);
    summary.set_number(prefix + ".recovery_overhead_s",
                       rec.recovery_overhead_s);
    summary.set_count(prefix + ".attempts", rec.attempts);
    summary.set_count(prefix + ".checkpoints",
                      static_cast<std::uint64_t>(rec.checkpoints));
    summary.set_count(prefix + ".resumed_seq",
                      static_cast<std::uint64_t>(rec.resumed_seq));
    summary.set_bool(prefix + ".outputs_match", rec.outputs_match);
  }
  if (!bench::write_summary(setup, summary)) return 1;
  return status;
}
