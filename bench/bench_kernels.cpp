// Google-benchmark microbenchmarks of the numeric kernels that dominate the
// algorithms' inner loops.  These measure *real* wall time on the host --
// they calibrate how expensive a simulated experiment is to run, and guard
// against performance regressions in the kernels themselves.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "hsi/metrics.hpp"
#include "linalg/eigen.hpp"
#include "linalg/fcls.hpp"
#include "linalg/matrix.hpp"
#include "linalg/solve.hpp"
#include "linalg/vec.hpp"

namespace {

using namespace hprs;

std::vector<float> random_pixel(std::size_t bands, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<float> px(bands);
  for (auto& v : px) v = static_cast<float>(rng.uniform(0.05, 1.0));
  return px;
}

linalg::Matrix random_targets(std::size_t count, std::size_t bands,
                              std::uint64_t seed) {
  Xoshiro256 rng(seed);
  linalg::Matrix m(count, bands);
  for (std::size_t r = 0; r < count; ++r) {
    const double shift = rng.uniform(0, 3);
    for (std::size_t b = 0; b < bands; ++b) {
      m(r, b) = 0.3 + 0.2 * std::sin(shift + 0.05 * static_cast<double>(b)) +
                0.01 * rng.uniform();
    }
  }
  return m;
}

void BM_Sad(benchmark::State& state) {
  const auto bands = static_cast<std::size_t>(state.range(0));
  const auto a = random_pixel(bands, 1);
  const auto b = random_pixel(bands, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hsi::sad<float, float>(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Sad)->Arg(32)->Arg(224);

void BM_Sid(benchmark::State& state) {
  const auto a = random_pixel(224, 3);
  const auto b = random_pixel(224, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hsi::sid<float>(a, b));
  }
}
BENCHMARK(BM_Sid);

void BM_OspScore(benchmark::State& state) {
  const auto t = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix targets = random_targets(t, 224, 5);
  const linalg::Cholesky gram(
      [&] {
        linalg::Matrix g = targets.multiply(targets.transposed());
        for (std::size_t i = 0; i < g.rows(); ++i) g(i, i) += 1e-6;
        return g;
      }());
  const auto px = random_pixel(224, 6);
  for (auto _ : state) {
    std::vector<double> b(t);
    for (std::size_t i = 0; i < t; ++i) {
      b[i] = linalg::dot<double, float>(targets.row(i), px);
    }
    const auto z = gram.solve(b);
    benchmark::DoNotOptimize(linalg::norm_sq<float>(px) -
                             linalg::dot<double, double>(b, z));
  }
}
BENCHMARK(BM_OspScore)->Arg(2)->Arg(9)->Arg(18);

void BM_Fcls(benchmark::State& state) {
  const auto t = static_cast<std::size_t>(state.range(0));
  const linalg::Unmixer unmixer(random_targets(t, 224, 7));
  const auto px = random_pixel(224, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(unmixer.fcls(px));
  }
}
BENCHMARK(BM_Fcls)->Arg(2)->Arg(9)->Arg(18);

void BM_JacobiEigen(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(9);
  linalg::Matrix b(n, n);
  for (auto& v : b.data()) v = rng.uniform(-1, 1);
  const linalg::Matrix cov = b.gram();
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::jacobi_eigen(cov));
  }
}
BENCHMARK(BM_JacobiEigen)->Arg(32)->Arg(64)->Arg(224)
    ->Unit(benchmark::kMillisecond);

void BM_CovarianceAccumulation(benchmark::State& state) {
  // The per-pixel covariance update that dominates PCT's parallel phase.
  const std::size_t bands = 224;
  const auto px = random_pixel(bands, 10);
  std::vector<double> mean(bands, 0.4);
  std::vector<double> centered(bands);
  std::vector<double> tri(bands * (bands + 1) / 2, 0.0);
  for (auto _ : state) {
    for (std::size_t b = 0; b < bands; ++b) {
      centered[b] = static_cast<double>(px[b]) - mean[b];
    }
    std::size_t k = 0;
    for (std::size_t i = 0; i < bands; ++i) {
      const double di = centered[i];
      for (std::size_t j = i; j < bands; ++j) {
        tri[k++] += di * centered[j];
      }
    }
    benchmark::DoNotOptimize(tri.data());
  }
}
BENCHMARK(BM_CovarianceAccumulation);

void BM_CholeskyFactorization(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(11);
  linalg::Matrix b(n, n);
  for (auto& v : b.data()) v = rng.uniform(-1, 1);
  linalg::Matrix spd = b.gram();
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::Cholesky(spd));
  }
}
BENCHMARK(BM_CholeskyFactorization)->Arg(18)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
