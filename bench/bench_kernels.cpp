// Google-benchmark microbenchmarks of the numeric kernels that dominate the
// algorithms' inner loops.  These measure *real* wall time on the host --
// they calibrate how expensive a simulated experiment is to run, and guard
// against performance regressions in the kernels themselves.
//
// The *_Reference / *_Fast pairs pin the scalar loops against the blocked
// kernels (linalg/kernels.hpp) on the dominant sweeps: the MORPH windowed
// eccentricity pass, the PCT covariance accumulation, and the ATDCA OSP
// sweep.  Pass --json <path> (conventionally BENCH_kernels.json) for a
// machine-readable ns/op + bytes/op summary.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "core/morph_kernel.hpp"
#include "core/spmd_common.hpp"
#include "hsi/cube.hpp"
#include "hsi/metrics.hpp"
#include "linalg/eigen.hpp"
#include "linalg/fcls.hpp"
#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"
#include "linalg/solve.hpp"
#include "linalg/thread_pool.hpp"
#include "linalg/tile_graph.hpp"
#include "linalg/vec.hpp"

namespace {

using namespace hprs;

std::vector<float> random_pixel(std::size_t bands, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<float> px(bands);
  for (auto& v : px) v = static_cast<float>(rng.uniform(0.05, 1.0));
  return px;
}

linalg::Matrix random_targets(std::size_t count, std::size_t bands,
                              std::uint64_t seed) {
  Xoshiro256 rng(seed);
  linalg::Matrix m(count, bands);
  for (std::size_t r = 0; r < count; ++r) {
    const double shift = rng.uniform(0, 3);
    for (std::size_t b = 0; b < bands; ++b) {
      m(r, b) = 0.3 + 0.2 * std::sin(shift + 0.05 * static_cast<double>(b)) +
                0.01 * rng.uniform();
    }
  }
  return m;
}

void BM_Sad(benchmark::State& state) {
  const auto bands = static_cast<std::size_t>(state.range(0));
  const auto a = random_pixel(bands, 1);
  const auto b = random_pixel(bands, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hsi::sad<float, float>(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Sad)->Arg(32)->Arg(224);

void BM_Sid(benchmark::State& state) {
  const auto a = random_pixel(224, 3);
  const auto b = random_pixel(224, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hsi::sid<float>(a, b));
  }
}
BENCHMARK(BM_Sid);

void BM_OspScore(benchmark::State& state) {
  const auto t = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix targets = random_targets(t, 224, 5);
  const linalg::Cholesky gram(
      [&] {
        linalg::Matrix g = targets.multiply(targets.transposed());
        for (std::size_t i = 0; i < g.rows(); ++i) g(i, i) += 1e-6;
        return g;
      }());
  const auto px = random_pixel(224, 6);
  for (auto _ : state) {
    std::vector<double> b(t);
    for (std::size_t i = 0; i < t; ++i) {
      b[i] = linalg::dot<double, float>(targets.row(i), px);
    }
    const auto z = gram.solve(b);
    benchmark::DoNotOptimize(linalg::norm_sq<float>(px) -
                             linalg::dot<double, double>(b, z));
  }
}
BENCHMARK(BM_OspScore)->Arg(2)->Arg(9)->Arg(18);

void BM_Fcls(benchmark::State& state) {
  const auto t = static_cast<std::size_t>(state.range(0));
  const linalg::Unmixer unmixer(random_targets(t, 224, 7));
  const auto px = random_pixel(224, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(unmixer.fcls(px));
  }
}
BENCHMARK(BM_Fcls)->Arg(2)->Arg(9)->Arg(18);

void BM_JacobiEigen(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(9);
  linalg::Matrix b(n, n);
  for (auto& v : b.data()) v = rng.uniform(-1, 1);
  const linalg::Matrix cov = b.gram();
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::jacobi_eigen(cov));
  }
}
BENCHMARK(BM_JacobiEigen)->Arg(32)->Arg(64)->Arg(224)
    ->Unit(benchmark::kMillisecond);

void BM_CovarianceAccumulation(benchmark::State& state) {
  // The per-pixel covariance update that dominates PCT's parallel phase.
  const std::size_t bands = 224;
  const auto px = random_pixel(bands, 10);
  std::vector<double> mean(bands, 0.4);
  std::vector<double> centered(bands);
  std::vector<double> tri(bands * (bands + 1) / 2, 0.0);
  for (auto _ : state) {
    for (std::size_t b = 0; b < bands; ++b) {
      centered[b] = static_cast<double>(px[b]) - mean[b];
    }
    std::size_t k = 0;
    for (std::size_t i = 0; i < bands; ++i) {
      const double di = centered[i];
      for (std::size_t j = i; j < bands; ++j) {
        tri[k++] += di * centered[j];
      }
    }
    benchmark::DoNotOptimize(tri.data());
  }
}
BENCHMARK(BM_CovarianceAccumulation);

void BM_CholeskyFactorization(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(11);
  linalg::Matrix b(n, n);
  for (auto& v : b.data()) v = rng.uniform(-1, 1);
  linalg::Matrix spd = b.gram();
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::Cholesky(spd));
  }
}
BENCHMARK(BM_CholeskyFactorization)->Arg(18)->Arg(64);

// --- Paired reference/fast benchmarks of the dominant sweeps --------------

hsi::HsiCube random_cube(std::size_t rows, std::size_t cols,
                         std::size_t bands, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<float> samples(rows * cols * bands);
  for (auto& v : samples) v = static_cast<float>(rng.uniform(0.05, 1.0));
  return hsi::HsiCube(rows, cols, bands, std::move(samples));
}

void BM_MatrixMultiply(benchmark::State& state, bool reference) {
  const linalg::ScopedKernelPath path(reference);
  const std::size_t n = 96;
  const std::size_t k = 224;
  Xoshiro256 rng(12);
  linalg::Matrix a(n, k);
  linalg::Matrix b(k, n);
  for (auto& v : a.data()) v = rng.uniform(-1, 1);
  for (auto& v : b.data()) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.multiply(b));
  }
  state.counters["bytes_per_op"] = static_cast<double>(
      (n * k + k * n + n * n) * sizeof(double));
}
void BM_MatrixMultiply_Reference(benchmark::State& state) {
  BM_MatrixMultiply(state, true);
}
void BM_MatrixMultiply_Fast(benchmark::State& state) {
  const linalg::ScopedKernelThreads threads(
      static_cast<std::size_t>(state.range(0)));
  BM_MatrixMultiply(state, false);
}
BENCHMARK(BM_MatrixMultiply_Reference)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MatrixMultiply_Fast)
    ->ArgName("threads")->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_MorphWindow(benchmark::State& state, bool reference) {
  // One full MORPH erosion/dilation/MEI iteration on a worker-sized block:
  // the windowed SAD pass this pair measures is the paper's dominant kernel.
  const linalg::ScopedKernelPath path(reference);
  const std::size_t rows = 16;
  const std::size_t cols = 16;
  const std::size_t bands = 224;
  const std::size_t radius = 2;
  core::MorphBlockEngine engine(random_cube(rows, cols, bands, 13), radius);
  for (auto _ : state) {
    engine.iterate(/*last=*/false);
    benchmark::DoNotOptimize(engine.mei().data());
  }
  const double window = static_cast<double>((2 * radius + 1) * (2 * radius + 1));
  state.counters["bytes_per_op"] = static_cast<double>(rows * cols * bands) *
                                   sizeof(float) * (window + 1.0);
}
void BM_MorphWindow_Reference(benchmark::State& state) {
  BM_MorphWindow(state, true);
}
void BM_MorphWindow_Fast(benchmark::State& state) {
  const linalg::ScopedKernelThreads threads(
      static_cast<std::size_t>(state.range(0)));
  BM_MorphWindow(state, false);
}
BENCHMARK(BM_MorphWindow_Reference)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MorphWindow_Fast)
    ->ArgName("threads")->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_PctCovariance(benchmark::State& state, bool reference) {
  // A 64-pixel strip of PCT's centered covariance accumulation: per-pixel
  // rank-1 updates against one rank-64 syrk update of the packed triangle.
  const std::size_t bands = 224;
  const std::size_t strip = 64;
  const std::size_t tri_n = bands * (bands + 1) / 2;
  Xoshiro256 rng(14);
  std::vector<double> centered(strip * bands);
  for (auto& v : centered) v = rng.uniform(-0.5, 0.5);
  std::vector<double> tri(tri_n, 0.0);
  for (auto _ : state) {
    if (reference) {
      for (std::size_t p = 0; p < strip; ++p) {
        const double* cp = centered.data() + p * bands;
        std::size_t k = 0;
        for (std::size_t i = 0; i < bands; ++i) {
          const double di = cp[i];
          for (std::size_t j = i; j < bands; ++j) {
            tri[k++] += di * cp[j];
          }
        }
      }
    } else {
      linalg::syrk_tri_update(centered.data(), strip, bands, tri.data());
    }
    benchmark::DoNotOptimize(tri.data());
  }
  state.counters["bytes_per_op"] = static_cast<double>(
      (strip * bands + 2 * tri_n) * sizeof(double));
}
void BM_PctCovariance_Reference(benchmark::State& state) {
  BM_PctCovariance(state, true);
}
void BM_PctCovariance_Fast(benchmark::State& state) {
  const linalg::ScopedKernelThreads threads(
      static_cast<std::size_t>(state.range(0)));
  BM_PctCovariance(state, false);
}
BENCHMARK(BM_PctCovariance_Reference)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PctCovariance_Fast)
    ->ArgName("threads")->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_PctCovariance_Tiled(benchmark::State& state) {
  // The same strip as BM_PctCovariance_Fast, accumulated tile by tile over
  // the row-tile plan the streamed engine driver walks (16-pixel tiles into
  // one shared triangle): pins the tiling overhead of the steady-state
  // runtime against the monolithic syrk, which this must track closely.
  const linalg::ScopedKernelThreads threads(
      static_cast<std::size_t>(state.range(0)));
  const std::size_t bands = 224;
  const std::size_t strip = 64;
  const std::size_t tri_n = bands * (bands + 1) / 2;
  Xoshiro256 rng(14);
  std::vector<double> centered(strip * bands);
  for (auto& v : centered) v = rng.uniform(-0.5, 0.5);
  const auto tiles =
      linalg::make_row_tiles(0, strip, bands * sizeof(double), 16);
  std::vector<double> tri(tri_n, 0.0);
  for (auto _ : state) {
    for (const auto& t : tiles) {
      linalg::syrk_tri_update(centered.data() + t.row_begin * bands, t.rows(),
                              bands, tri.data());
    }
    benchmark::DoNotOptimize(tri.data());
  }
  state.counters["bytes_per_op"] = static_cast<double>(
      (strip * bands + 2 * tri_n) * sizeof(double));
}
BENCHMARK(BM_PctCovariance_Tiled)
    ->ArgName("threads")->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_PctCovariance_MixedTile(benchmark::State& state) {
  // The gated mixed-precision tile path on the same strip: float syrk into
  // a private triangle, one double fold per tile.  The max_residual counter
  // records the observed relative error against the double kernel, so the
  // --json artifact tracks accuracy next to speed.
  const linalg::ScopedKernelThreads threads(
      static_cast<std::size_t>(state.range(0)));
  const std::size_t bands = 224;
  const std::size_t strip = 64;
  const std::size_t tri_n = bands * (bands + 1) / 2;
  Xoshiro256 rng(14);
  std::vector<float> centered(strip * bands);
  for (auto& v : centered) v = static_cast<float>(rng.uniform(-0.5, 0.5));
  std::vector<float> ftri(tri_n, 0.0f);
  std::vector<double> tri(tri_n, 0.0);
  for (auto _ : state) {
    std::fill(ftri.begin(), ftri.end(), 0.0f);
    linalg::syrk_tri_update_f32(centered.data(), strip, bands, ftri.data());
    for (std::size_t k = 0; k < tri_n; ++k) {
      tri[k] += static_cast<double>(ftri[k]);
    }
    benchmark::DoNotOptimize(tri.data());
  }
  // One double-kernel pass of the identical strip bounds the fast path's
  // error; the a-priori gate (mixed_tile_admissible) must dominate it.
  std::vector<double> dcentered(centered.begin(), centered.end());
  std::vector<double> ref(tri_n, 0.0);
  linalg::syrk_tri_update(dcentered.data(), strip, bands, ref.data());
  std::fill(ftri.begin(), ftri.end(), 0.0f);
  linalg::syrk_tri_update_f32(centered.data(), strip, bands, ftri.data());
  double max_abs = 0.0;
  double max_err = 0.0;
  for (std::size_t k = 0; k < tri_n; ++k) {
    max_abs = std::max(max_abs, std::abs(ref[k]));
    max_err =
        std::max(max_err, std::abs(static_cast<double>(ftri[k]) - ref[k]));
  }
  // Max-norm relative residual -- the quantity the a-priori gate
  // (mixed_tile_admissible) bounds by eps32 * chain length.
  state.counters["max_residual"] = max_err / std::max(max_abs, 1e-30);
  state.counters["bytes_per_op"] =
      static_cast<double>(strip * bands) * sizeof(float) +
      static_cast<double>(tri_n) * (sizeof(float) + sizeof(double));
}
BENCHMARK(BM_PctCovariance_MixedTile)
    ->ArgName("threads")->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_OspSweep(benchmark::State& state, bool reference) {
  // ATDCA's per-round argmax of the OSP score over a 32x32 block with nine
  // current targets.
  const linalg::ScopedKernelPath path(reference);
  const std::size_t t = 9;
  const std::size_t bands = 224;
  const hsi::HsiCube cube = random_cube(32, 32, bands, 15);
  const linalg::Matrix targets = random_targets(t, bands, 16);
  const linalg::Cholesky gram(core::detail::ridged_row_gram(targets));
  linalg::ScratchArena arena;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::detail::osp_argmax_sweep(
        targets, gram, cube, 0, cube.rows(), arena));
  }
  state.counters["bytes_per_op"] =
      static_cast<double>(cube.pixel_count() * bands) * sizeof(float) +
      static_cast<double>(t * bands) * sizeof(double);
}
void BM_OspSweep_Reference(benchmark::State& state) {
  BM_OspSweep(state, true);
}
void BM_OspSweep_Fast(benchmark::State& state) {
  const linalg::ScopedKernelThreads threads(
      static_cast<std::size_t>(state.range(0)));
  BM_OspSweep(state, false);
}
BENCHMARK(BM_OspSweep_Reference)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OspSweep_Fast)
    ->ArgName("threads")->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_OspSweep_Tiled(benchmark::State& state) {
  // BM_OspSweep_Fast cut into the 8-row tiles the streamed driver sweeps,
  // per-tile argmaxes folded strictly-greater in tile order (the runtime's
  // order-preserving fold): pins the tiling overhead of the OSP sweep.
  const linalg::ScopedKernelThreads threads(
      static_cast<std::size_t>(state.range(0)));
  const linalg::ScopedKernelPath path(false);
  const std::size_t t = 9;
  const std::size_t bands = 224;
  const hsi::HsiCube cube = random_cube(32, 32, bands, 15);
  const linalg::Matrix targets = random_targets(t, bands, 16);
  const linalg::Cholesky gram(core::detail::ridged_row_gram(targets));
  const auto tiles = linalg::make_row_tiles(
      0, cube.rows(), cube.cols() * cube.bands() * sizeof(float), 8);
  linalg::ScratchArena arena;
  for (auto _ : state) {
    auto best = core::detail::osp_argmax_sweep(
        targets, gram, cube, tiles[0].row_begin, tiles[0].row_end, arena);
    for (std::size_t i = 1; i < tiles.size(); ++i) {
      const auto cand = core::detail::osp_argmax_sweep(
          targets, gram, cube, tiles[i].row_begin, tiles[i].row_end, arena);
      if (cand.score > best.score) best = cand;
    }
    benchmark::DoNotOptimize(best);
  }
  state.counters["bytes_per_op"] =
      static_cast<double>(cube.pixel_count() * bands) * sizeof(float) +
      static_cast<double>(t * bands) * sizeof(double);
}
BENCHMARK(BM_OspSweep_Tiled)
    ->ArgName("threads")->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// Console reporter that additionally collects ns/op + bytes/op per run for
/// the --json summary.
class KernelJsonCollector : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const auto& run : reports) {
      bench::KernelRecord rec;
      rec.name = run.benchmark_name();
      if (run.iterations > 0) {
        rec.ns_per_op = run.real_accumulated_time /
                        static_cast<double>(run.iterations) * 1e9;
      }
      const auto it = run.counters.find("bytes_per_op");
      if (it != run.counters.end()) {
        rec.bytes_per_op = static_cast<double>(it->second);
      }
      const auto res = run.counters.find("max_residual");
      if (res != run.counters.end()) {
        rec.max_residual = static_cast<double>(res->second);
      }
      records.push_back(std::move(rec));
    }
    ConsoleReporter::ReportRuns(reports);
  }

  std::vector<bench::KernelRecord> records;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::take_json_flag(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const std::size_t hw_threads = std::thread::hardware_concurrency();
  const std::size_t kernel_threads = linalg::kernel_threads();
  if (hw_threads != 0 && kernel_threads > hw_threads) {
    std::fprintf(stderr,
                 "bench_kernels: HPRS_KERNEL_THREADS=%zu exceeds the %zu "
                 "hardware threads; timings will include oversubscription "
                 "stalls and are not comparable to the committed artifact\n",
                 kernel_threads, hw_threads);
  }
  KernelJsonCollector reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!json_path.empty() &&
      !bench::write_kernel_json(json_path, reporter.records, hw_threads,
                                kernel_threads)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  benchmark::Shutdown();
  return 0;
}
