// Ablation: static vs adaptive workload estimation under time-varying
// background load.
//
// The paper's introduction motivates heterogeneous platforms assembled
// from user workstations, whose effective speed changes as owners use
// them; its conclusions point at dynamic environments as future work.
// This bench draws a deterministic sequence of background-load snapshots
// over the Table 1 network and compares, per epoch, the compute makespan
// max_i(alpha_i * W * w_i^loaded) of three partitioning strategies:
//
//   equal     -- the homogeneous baseline (alpha = 1/P),
//   static    -- WEA fractions computed once from the nominal cycle-times,
//   adaptive  -- WEA fractions recomputed from each epoch's loaded speeds.
//
// Expected shape: adaptive <= static <= equal per epoch; static still beats
// equal (nominal heterogeneity dominates), adaptive recovers most of the
// load-induced loss.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "core/atdca.hpp"
#include "core/partition.hpp"
#include "simnet/load.hpp"

int main(int argc, char** argv) {
  using namespace hprs;
  const auto setup = bench::make_setup(argc, argv);
  const auto& cube = setup.scene.cube;

  const simnet::Platform nominal = simnet::fully_heterogeneous();
  const auto model = core::atdca_workload(cube.bands(), setup.config.targets);
  const double work_mflops =
      model.flops_per_pixel * 1e-6 *
      static_cast<double>(cube.pixel_count() * setup.config.replication);

  // Compute makespan of a fraction vector against loaded cycle-times.
  const auto makespan = [&](const std::vector<double>& alpha,
                            const simnet::Platform& loaded) {
    double worst = 0.0;
    for (std::size_t i = 0; i < loaded.size(); ++i) {
      worst = std::max(worst, alpha[i] * work_mflops * loaded.cycle_time(i));
    }
    return worst;
  };

  const auto static_alpha =
      core::wea_partition(nominal, cube.rows(), cube.cols(), model,
                          core::PartitionPolicy::kHeterogeneous)
          .alpha;
  const std::vector<double> equal_alpha(nominal.size(),
                                        1.0 / static_cast<double>(
                                                  nominal.size()));

  const auto epochs = simnet::load_epochs(nominal.size(), 8, 0.7, 42);
  TextTable table({"Epoch", "Equal (s)", "Static WEA (s)", "Adaptive WEA (s)",
                   "Static/Adaptive"});
  double sum_static = 0.0;
  double sum_adaptive = 0.0;
  for (std::size_t e = 0; e < epochs.size(); ++e) {
    const simnet::Platform loaded =
        simnet::with_background_load(nominal, epochs[e]);
    const auto adaptive_alpha =
        core::wea_partition(loaded, cube.rows(), cube.cols(), model,
                            core::PartitionPolicy::kHeterogeneous)
            .alpha;
    const double t_equal = makespan(equal_alpha, loaded);
    const double t_static = makespan(static_alpha, loaded);
    const double t_adaptive = makespan(adaptive_alpha, loaded);
    sum_static += t_static;
    sum_adaptive += t_adaptive;
    table.add_row({TextTable::num(static_cast<long long>(e + 1)),
                   TextTable::num(t_equal, 1), TextTable::num(t_static, 1),
                   TextTable::num(t_adaptive, 1),
                   TextTable::num(t_static / t_adaptive, 2)});
  }
  bench::emit(table, setup.csv,
              "Ablation: partitioning under time-varying background load "
              "(ATDCA compute makespan per epoch).");
  std::printf("\nre-estimating the WEA per epoch saves %.1f%% over a "
              "static heterogeneous partitioning\n",
              100.0 * (1.0 - sum_adaptive / sum_static));
  return 0;
}
