// Multi-job scheduler throughput (paper Sect. 6 outlook: scheduling many
// concurrent analyses on a shared network of workstations).
//
// A fixed mixed stream of --jobs analysis jobs (all five SPMD schedules,
// round-robin, staggered arrivals, varying gang widths) is pushed through
// sched::run_schedule under each placement policy (fifo, sjf, hetero) on
// the four 16-node NOW platforms of Section 3.1 plus a --cpus-node
// Thunderhead partition.  For every {network, policy} cell the bench
// reports the stream makespan, the cluster-wide busy fraction, and the
// queue-wait percentiles (nearest-rank p50 / p90 / max).
//
// Shape to hold: on the heterogeneous-processor networks the
// heterogeneity-aware best-fit beats FIFO on both makespan and cluster
// utilization (it places gangs on the fastest free processors and
// backfills around the head-of-line job); on the fully homogeneous network
// the policies nearly coincide.  All numbers are virtual time, so every
// cell is bit-identical across runs and executor modes; the JSON twin
// (--json BENCH_sched.json) makes them machine-checkable.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/snapshot.hpp"
#include "sched/scheduler.hpp"

namespace {

using namespace hprs;

/// Deterministic mixed stream: algorithms round-robin, arrivals every
/// `gap_s`, gang widths cycling {2, 3, 4, 6} (clipped to the pool).
std::vector<sched::JobSpec> make_stream(std::size_t jobs, int pool,
                                        const bench::BenchSetup& setup,
                                        double gap_s) {
  constexpr sched::JobAlgorithm kCycle[] = {
      sched::JobAlgorithm::kAtdca, sched::JobAlgorithm::kPct,
      sched::JobAlgorithm::kPpi, sched::JobAlgorithm::kUfcls,
      sched::JobAlgorithm::kMorph};
  constexpr int kWidths[] = {2, 3, 4, 6};
  std::vector<sched::JobSpec> stream;
  for (std::size_t k = 0; k < jobs; ++k) {
    sched::JobSpec spec;
    spec.id = k + 1;
    spec.algorithm = kCycle[k % 5];
    spec.arrival_s = gap_s * static_cast<double>(k);
    spec.ranks = std::min(pool, kWidths[k % 4]);
    spec.targets = std::min<std::size_t>(setup.config.targets, 8);
    spec.classes = std::min<std::size_t>(setup.config.classes, 5);
    spec.iterations = std::min<std::size_t>(setup.config.morph_iterations, 2);
    spec.kernel_radius = std::min<std::size_t>(setup.config.kernel_radius, 1);
    spec.skewers = 64;
    spec.replication = setup.config.replication;
    stream.push_back(spec);
  }
  return stream;
}

/// Nearest-rank percentile of an unsorted sample (q in (0, 1]).
double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<std::size_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(xs.size()))));
  return xs[rank - 1];
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << text;
  return f.good();
}

/// Counter-plane cell: one fully-heterogeneous hetero-policy run with the
/// snapshot service on.  Kept off the sweep path so the sweep's summary and
/// BENCH_sched.json stay bit-identical to releases without this cell; the
/// timeline it writes is the golden gated by scripts/bench_smoke.sh
/// --only counter-plane.
int run_snapshot_cell(const bench::BenchSetup& setup, std::size_t jobs,
                      double gap_s, double interval_s,
                      const std::string& snap_path,
                      const std::string& trace_path) {
  const auto networks = bench::paper_networks();
  const auto net = std::find_if(
      networks.begin(), networks.end(),
      [](const simnet::Platform& n) {
        return n.name() == "fully-heterogeneous";
      });
  if (net == networks.end()) {
    std::fprintf(stderr, "bench_sched_throughput: no fully-heterogeneous "
                         "network in paper_networks()\n");
    return 1;
  }
  const auto stream = make_stream(
      jobs, static_cast<int>(net->size()) - 1, setup, gap_s);
  sched::SchedulerConfig config;
  config.policy = sched::Policy::kHeteroBestFit;
  vmpi::Options options;
  options.snapshot.enabled = true;
  options.snapshot.interval_s = interval_s;
  options.enable_trace = !trace_path.empty();
  const auto result =
      sched::run_schedule(*net, setup.scene.cube, stream, config, options);

  if (!snap_path.empty()) {
    if (!write_file(snap_path,
                    obs::snapshot_timeline_json(result.report.snapshots))) {
      std::fprintf(stderr, "failed to write %s\n", snap_path.c_str());
      return 1;
    }
    std::printf("snapshot timeline: %s (%zu samples)\n", snap_path.c_str(),
                result.report.snapshots.size());
  }
  if (!trace_path.empty()) {
    const std::string json = obs::chrome_trace_json(
        result.report, sched::job_track_groups(result), {});
    if (!write_file(trace_path, json)) {
      std::fprintf(stderr, "failed to write %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("chrome trace: %s\n", trace_path.c_str());
  }
  return 0;
}

}  // namespace

/// Peels "--<name> <value>" out of argv (make_setup rejects flags it does
/// not know); returns `fallback` when absent.
double take_double_flag(int& argc, char** argv, const std::string& name,
                        double fallback) {
  double value = fallback;
  int out = 0;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--" + name && i + 1 < argc) {
      value = std::stod(argv[++i]);
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  return value;
}

int main(int argc, char** argv) {
  const std::string json_path = bench::take_json_flag(argc, argv);
  const std::string snap_path =
      bench::take_string_flag(argc, argv, "snapshots");
  const std::string trace_path = bench::take_string_flag(argc, argv, "trace");
  const bool snapshots_only = bench::take_bool_flag(argc, argv,
                                                    "snapshots-only");
  const double snap_interval_s =
      take_double_flag(argc, argv, "snapshot-interval", 0.5);
  const auto jobs = static_cast<std::size_t>(
      take_double_flag(argc, argv, "jobs", 32));
  const double gap_s = take_double_flag(argc, argv, "gap", 0.2);
  const auto setup = bench::make_setup(argc, argv);

  if (!snap_path.empty() || !trace_path.empty()) {
    const int cell_status = run_snapshot_cell(setup, jobs, gap_s,
                                              snap_interval_s, snap_path,
                                              trace_path);
    if (cell_status != 0 || snapshots_only) return cell_status;
  } else if (snapshots_only) {
    std::fprintf(stderr,
                 "bench_sched_throughput: --snapshots-only needs "
                 "--snapshots <path> or --trace <path>\n");
    return 2;
  }

  std::vector<simnet::Platform> networks = bench::paper_networks();
  networks.push_back(simnet::thunderhead(64));
  // Mixed CPU + accelerator NOW: 12 plain workstations plus 4 accelerated
  // nodes on the highest ranks, where FIFO's lowest-free-ranks placement
  // never looks unless the pool is drained.
  networks.push_back(simnet::accelerated_now(12, 4));

  std::vector<bench::SchedRecord> records;
  TextTable table({"Network", "Policy", "Makespan (s)", "Utilization",
                   "Wait p50 (s)", "Wait p90 (s)", "Wait max (s)", "Done"});
  for (const auto& net : networks) {
    const auto stream = make_stream(
        jobs, static_cast<int>(net.size()) - 1, setup, gap_s);
    for (const auto policy :
         {sched::Policy::kFifo, sched::Policy::kSjf,
          sched::Policy::kHeteroBestFit}) {
      sched::SchedulerConfig config;
      config.policy = policy;
      const auto result =
          sched::run_schedule(net, setup.scene.cube, stream, config);

      if (std::getenv("SCHED_DEBUG") != nullptr) {
        for (const auto& record : result.records) {
          std::printf("DBG %s %s job %llu est %.3f actual %.3f width %zu\n",
                      net.name().c_str(), sched::to_string(policy),
                      static_cast<unsigned long long>(record.id),
                      record.est_seconds, record.makespan_s(),
                      record.members.size());
        }
      }
      std::vector<double> waits;
      for (const auto& record : result.records) {
        if (record.completed()) waits.push_back(record.queue_wait_s());
      }
      bench::SchedRecord rec;
      rec.network = net.name();
      rec.policy = sched::to_string(policy);
      rec.makespan_s = result.makespan_s;
      rec.utilization = result.utilization;
      rec.wait_p50_s = percentile(waits, 0.50);
      rec.wait_p90_s = percentile(waits, 0.90);
      rec.wait_max_s = percentile(waits, 1.00);
      rec.completed = result.completed();
      rec.rejected = result.rejected();
      records.push_back(rec);

      table.add_row({rec.network, rec.policy,
                     TextTable::num(rec.makespan_s, 3),
                     TextTable::num(rec.utilization, 3),
                     TextTable::num(rec.wait_p50_s, 3),
                     TextTable::num(rec.wait_p90_s, 3),
                     TextTable::num(rec.wait_max_s, 3),
                     std::to_string(rec.completed) + "/" +
                         std::to_string(stream.size())});
    }
  }

  bench::emit(table, setup.csv,
              "Scheduler throughput. Mixed job stream per network under "
              "each placement policy (virtual time).");

  // The placement-quality contract: on the fully heterogeneous NOW the
  // heterogeneity-aware policy must beat FIFO on makespan and utilization.
  const auto cell = [&](const std::string& net, const std::string& pol) {
    for (const auto& r : records) {
      if (r.network == net && r.policy == pol) return r;
    }
    return bench::SchedRecord{};
  };
  const auto fifo = cell("fully-heterogeneous", "fifo");
  const auto hetero = cell("fully-heterogeneous", "hetero");
  std::printf(
      "fully-heterogeneous: hetero/fifo makespan %.3f/%.3f s (%.2fx), "
      "utilization %.3f/%.3f\n",
      hetero.makespan_s, fifo.makespan_s,
      hetero.makespan_s > 0.0 ? fifo.makespan_s / hetero.makespan_s : 0.0,
      hetero.utilization, fifo.utilization);
  int status = 0;
  if (hetero.makespan_s >= fifo.makespan_s ||
      hetero.utilization <= fifo.utilization) {
    std::fprintf(stderr,
                 "bench_sched_throughput: hetero policy failed to beat FIFO "
                 "on the fully heterogeneous NOW\n");
    status = 1;
  }

  // Same contract on the mixed CPU + accelerator NOW: the cost-aware
  // policy must find the high-rank accelerated nodes FIFO ignores.
  const auto accel_fifo = cell("accelerated-now-12c4a", "fifo");
  const auto accel_hetero = cell("accelerated-now-12c4a", "hetero");
  std::printf(
      "accelerated-now: hetero/fifo makespan %.3f/%.3f s (%.2fx)\n",
      accel_hetero.makespan_s, accel_fifo.makespan_s,
      accel_hetero.makespan_s > 0.0
          ? accel_fifo.makespan_s / accel_hetero.makespan_s
          : 0.0);
  if (accel_hetero.makespan_s >= accel_fifo.makespan_s) {
    std::fprintf(stderr,
                 "bench_sched_throughput: hetero policy failed to beat FIFO "
                 "on the mixed CPU+accelerator NOW\n");
    status = 1;
  }

  if (!json_path.empty() && !bench::write_sched_json(json_path, records)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }

  obs::RunSummary summary;
  for (const auto& rec : records) {
    const std::string prefix = "sched." + rec.network + "." + rec.policy;
    summary.set_number(prefix + ".makespan_s", rec.makespan_s);
    summary.set_number(prefix + ".utilization", rec.utilization);
    summary.set_number(prefix + ".wait_p50_s", rec.wait_p50_s);
    summary.set_number(prefix + ".wait_p90_s", rec.wait_p90_s);
    summary.set_number(prefix + ".wait_max_s", rec.wait_max_s);
    summary.set_count(prefix + ".completed", rec.completed);
    summary.set_count(prefix + ".rejected", rec.rejected);
  }
  if (!bench::write_summary(setup, summary)) return 1;
  return status;
}
