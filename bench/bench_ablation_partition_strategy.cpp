// Ablation: the data-partitioning argument of the paper's Section 2.1.
//
// Spectral-domain partitioning slices the cube into band ranges, so every
// full-spectrum kernel (SAD, OSP, unmixing) needs contributions from every
// processor for every pixel; the paper's hybrid strategy (spatial blocks
// that keep the full spectrum) makes per-pixel kernels communication-free.
// This bench quantifies the communication each strategy implies for one
// pass of per-pixel full-spectrum kernels, using the partition machinery
// and the platforms' measured link capacities.
#include <cstdio>

#include "bench_common.hpp"
#include "core/partition.hpp"

int main(int argc, char** argv) {
  using namespace hprs;
  const auto setup = bench::make_setup(argc, argv);
  const auto& cube = setup.scene.cube;
  const std::size_t pixels = cube.pixel_count() * setup.config.replication;
  const std::size_t bands = cube.bands();

  TextTable table({"Network", "Strategy", "Exchange bytes/pass",
                   "Exchange time (s)", "Kernel passes / COM-second"});
  for (const auto& net : bench::paper_networks()) {
    // Hybrid (spatial blocks, full spectrum): per-pixel kernels touch only
    // local data; the only exchange is the per-kernel reduction of one
    // candidate record per worker.
    const double avg_link = net.average_link_ms_per_mbit();
    const auto seconds = [&](std::size_t bytes) {
      return static_cast<double>(bytes) * 8.0 / 1e6 * avg_link / 1000.0;
    };
    const std::size_t hybrid_bytes = net.size() * 24;

    // Spectral: each worker holds a band slice of every pixel.  One
    // full-spectrum kernel pass needs each worker's partial results for
    // every pixel reduced together: P-1 workers ship one partial (8 bytes)
    // per pixel to the combiner.
    const auto parts = core::spectral_partition(
        net, bands, core::PartitionPolicy::kHeterogeneous);
    (void)parts;  // band ranges; the volume depends only on P and pixels
    const std::size_t spectral_bytes = (net.size() - 1) * pixels * 8;

    for (const auto& [name, bytes] :
         {std::pair<const char*, std::size_t>{"hybrid (paper)", hybrid_bytes},
          std::pair<const char*, std::size_t>{"spectral-domain",
                                              spectral_bytes}}) {
      const double t = seconds(bytes);
      table.add_row({net.name(), name,
                     TextTable::num(static_cast<long long>(bytes)),
                     TextTable::num(t, 4),
                     t > 0 ? TextTable::num(1.0 / t, 2) : "inf"});
    }
  }
  bench::emit(table, setup.csv,
              "Ablation: communication per full-spectrum kernel pass under "
              "hybrid vs spectral-domain partitioning (Sec. 2.1).");
  return 0;
}
