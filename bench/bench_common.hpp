// Shared scaffolding for the table-regeneration benches.
//
// Every bench binary reproduces one table or figure of the paper on the
// synthetic WTC scene.  The default scene is 96 x 96 pixels with a virtual
// replication factor that scales the timing model to the paper's full
// 2133 x 512 AVIRIS scene (about 1.09 M pixels); pass --rows/--cols/
// --replication to change it.  All numbers are deterministic in --seed.
#pragma once

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/runner.hpp"
#include "hsi/scene.hpp"
#include "linalg/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/run_summary.hpp"
#include "simnet/platform.hpp"

namespace hprs::bench {

struct BenchSetup {
  hsi::Scene scene;
  core::RunnerConfig config;
  bool csv = false;
  /// --summary <path>: write the canonical run summary (obs/run_summary.hpp)
  /// here; metrics collection is enabled for the bench when set.  Empty
  /// string disables both.
  std::string summary_path;
};

inline const std::vector<std::string>& common_options() {
  static const std::vector<std::string> opts = {
      "rows", "cols",   "bands",  "seed",       "replication", "targets",
      "classes", "iters", "radius", "threshold", "csv", "summary",
  };
  return opts;
}

/// Parses the common options and generates the scene.  `default_rows/cols`
/// let the Thunderhead benches default to taller scenes (>= 256 rows).
inline BenchSetup make_setup(int argc, char** argv,
                             std::size_t default_rows = 96,
                             std::size_t default_cols = 96,
                             std::size_t default_replication = 119) {
  const CliArgs args(argc, argv, common_options());
  hsi::SceneConfig scene_cfg;
  scene_cfg.rows = static_cast<std::size_t>(
      args.get_int("rows", static_cast<std::int64_t>(default_rows)));
  scene_cfg.cols = static_cast<std::size_t>(
      args.get_int("cols", static_cast<std::int64_t>(default_cols)));
  scene_cfg.bands = static_cast<std::size_t>(args.get_int("bands", 224));
  scene_cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 20010916));

  BenchSetup setup{hsi::generate_wtc_scene(scene_cfg), {}, false, {}};
  auto& cfg = setup.config;
  cfg.targets = static_cast<std::size_t>(args.get_int("targets", 18));
  // c is set to the number of spectrally distinguishable constituents of
  // the synthetic map (10 materials + fires), mirroring how the paper set
  // c = 7 from the class count of its USGS map.
  cfg.classes = static_cast<std::size_t>(args.get_int("classes", 14));
  cfg.morph_iterations = static_cast<std::size_t>(args.get_int("iters", 5));
  cfg.kernel_radius = static_cast<std::size_t>(args.get_int("radius", 2));
  cfg.sad_threshold = args.get_double("threshold", 0.06);
  cfg.replication = static_cast<std::size_t>(args.get_int(
      "replication", static_cast<std::int64_t>(default_replication)));
  setup.csv = args.get_bool("csv", false);
  setup.summary_path = args.get("summary", "");
  if (!setup.summary_path.empty()) {
    // Collect metrics for the whole bench process; write_summary embeds the
    // stable subset next to the per-run report fields.
    obs::Metrics::instance().reset();
    obs::Metrics::instance().set_enabled(true);
  }
  return setup;
}

/// Stable summary key prefix for one sweep cell, e.g.
/// "ATDCA.hetero.fully-heterogeneous" (platform names are hyphenated and
/// never need escaping).
inline std::string summary_prefix(core::Algorithm alg,
                                  core::PartitionPolicy policy,
                                  const std::string& network) {
  const char* pol =
      policy == core::PartitionPolicy::kHeterogeneous ? "hetero" : "homo";
  return std::string(core::to_string(alg)) + "." + pol + "." + network;
}

/// Appends the process-wide stable metrics under "metrics." and writes the
/// summary to setup.summary_path (no-op when the path is empty).  Returns
/// false -- after printing a diagnostic -- on I/O failure, so mains can
/// `return write_summary(...) ? 0 : 1`.
inline bool write_summary(const BenchSetup& setup, obs::RunSummary& summary) {
  if (setup.summary_path.empty()) return true;
  add_metrics(summary, "bench", obs::Metrics::instance().snapshot());
  if (!summary.write(setup.summary_path)) {
    std::fprintf(stderr, "failed to write %s\n", setup.summary_path.c_str());
    return false;
  }
  return true;
}

/// The four 16-node networks of Section 3.1, in the paper's column order.
inline std::vector<simnet::Platform> paper_networks() {
  return {simnet::fully_heterogeneous(), simnet::fully_homogeneous(),
          simnet::partially_heterogeneous(), simnet::partially_homogeneous()};
}

/// Thunderhead processor counts of Table 8.
inline const std::vector<std::size_t>& thunderhead_cpus() {
  static const std::vector<std::size_t> cpus = {1,  4,   16,  36, 64,
                                                100, 144, 196, 256};
  return cpus;
}

inline const std::vector<core::Algorithm>& all_algorithms() {
  static const std::vector<core::Algorithm> algs = {
      core::Algorithm::kAtdca, core::Algorithm::kUfcls, core::Algorithm::kPct,
      core::Algorithm::kMorph};
  return algs;
}

/// Writes the shared "_metadata" header line every committed BENCH_*.json
/// artifact carries: the host's hardware thread count, the effective
/// HPRS_KERNEL_THREADS setting, and an oversubscription warning flag
/// (timings measured with more kernel threads than hardware threads are
/// not comparable to the committed artifact).  scripts/bench_smoke.sh
/// structurally requires this header in every artifact.
inline void write_metadata_entry(std::FILE* f, bool trailing_comma,
                                 std::size_t hw_threads,
                                 std::size_t kernel_threads) {
  std::fprintf(f,
               "  \"_metadata\": {\"hw_threads\": %zu, \"kernel_threads\": "
               "%zu, \"oversubscribed\": %s}%s\n",
               hw_threads, kernel_threads,
               kernel_threads > hw_threads ? "true" : "false",
               trailing_comma ? "," : "");
}

inline void write_metadata_entry(std::FILE* f, bool trailing_comma) {
  write_metadata_entry(
      f, trailing_comma,
      static_cast<std::size_t>(std::thread::hardware_concurrency()),
      linalg::kernel_threads());
}

/// One cell of the Tables 5-7 sweep: an algorithm/policy pair on one of the
/// four experimental networks.
struct SweepRecord {
  core::Algorithm algorithm;
  core::PartitionPolicy policy;
  std::string network;
  vmpi::RunReport report;
};

/// Runs every {algorithm} x {hetero, homo} x {network} combination of the
/// paper's Tables 5-7 and returns the reports in display order (algorithm
/// major, hetero before homo, networks in paper column order).
inline std::vector<SweepRecord> network_sweep(const BenchSetup& setup) {
  std::vector<SweepRecord> records;
  const auto networks = paper_networks();
  for (const auto alg : all_algorithms()) {
    for (const auto policy : {core::PartitionPolicy::kHeterogeneous,
                              core::PartitionPolicy::kHomogeneous}) {
      for (const auto& net : networks) {
        auto cfg = setup.config;
        cfg.algorithm = alg;
        cfg.policy = policy;
        SweepRecord rec{alg, policy, net.name(),
                        core::run_algorithm(net, setup.scene.cube, cfg)
                            .report};
        records.push_back(std::move(rec));
      }
    }
  }
  return records;
}

/// One row of the machine-readable kernel-bench summary.  bench_kernels
/// collects one record per benchmark and serializes them with
/// write_kernel_json (--json <path>, conventionally BENCH_kernels.json) so
/// speedup tracking does not have to scrape console output.
struct KernelRecord {
  std::string name;
  double ns_per_op = 0.0;
  double bytes_per_op = 0.0;
  /// Largest relative residual a mixed-precision benchmark observed against
  /// its double reference; negative when the benchmark reports none.
  double max_residual = -1.0;
};

/// Writes the records as a flat JSON object keyed by benchmark name, headed
/// by a "_metadata" entry recording the host's hardware thread count and the
/// effective kernel-thread setting the numbers were measured under (timings
/// from an oversubscribed run are not comparable to the committed artifact).
/// No third-party JSON dependency: names are benchmark identifiers (no
/// characters needing escapes) and values are plain numbers.
inline bool write_kernel_json(const std::string& path,
                              const std::vector<KernelRecord>& records,
                              std::size_t hw_threads,
                              std::size_t kernel_threads) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n");
  write_metadata_entry(f, !records.empty(), hw_threads, kernel_threads);
  for (std::size_t i = 0; i < records.size(); ++i) {
    std::fprintf(f, "  \"%s\": {\"ns_per_op\": %.3f, \"bytes_per_op\": %.1f",
                 records[i].name.c_str(), records[i].ns_per_op,
                 records[i].bytes_per_op);
    if (records[i].max_residual >= 0.0) {
      std::fprintf(f, ", \"max_residual\": %.3e", records[i].max_residual);
    }
    std::fprintf(f, "}%s\n", i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  return true;
}

/// One cell of the streamed-tiling summary: one algorithm on one
/// accelerated gang (simnet::accelerated_now), monolithic staging against
/// the per-tile streamed driver (core::RunnerConfig::tile_stream).
/// bench_table6_breakdown collects one record per cell and serializes them
/// with write_stream_json (--json <path>, conventionally BENCH_stream.json)
/// so comm/compute-overlap regressions are machine-checkable.
struct StreamRecord {
  std::string algorithm;
  std::size_t cpus = 0;
  std::size_t accels = 0;
  double monolithic_s = 0.0;
  double streamed_s = 0.0;

  /// Percentage of the monolithic makespan saved by streaming.
  [[nodiscard]] double win_pct() const {
    return monolithic_s > 0.0 ? 100.0 * (1.0 - streamed_s / monolithic_s)
                              : 0.0;
  }
};

/// Writes the records as a flat JSON object keyed "<ALG>_cpu<n>_acc<m>".
/// Same no-dependency format rationale as write_kernel_json.
inline bool write_stream_json(const std::string& path,
                              const std::vector<StreamRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n");
  write_metadata_entry(f, !records.empty());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    std::fprintf(f,
                 "  \"%s_cpu%zu_acc%zu\": {\"monolithic_s\": %.6f, "
                 "\"streamed_s\": %.6f, \"win_pct\": %.3f}%s\n",
                 r.algorithm.c_str(), r.cpus, r.accels, r.monolithic_s,
                 r.streamed_s, r.win_pct(), i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  return true;
}

/// One cell of the engine host-runtime summary: how long the host took to
/// simulate one (algorithm, processor count) Thunderhead run, next to the
/// virtual time the run reported.  bench_table8_thunderhead collects one
/// record per cell and serializes them with write_engine_json
/// (--json <path>, conventionally BENCH_engine.json) so engine-scaling
/// regressions are machine-checkable.
struct EngineRecord {
  std::string algorithm;
  std::size_t cpus = 0;
  double host_seconds = 0.0;
  double virtual_seconds = 0.0;
};

/// Writes the records as a flat JSON object keyed "<ALG>_p<cpus>".  Same
/// no-dependency format rationale as write_kernel_json.
inline bool write_engine_json(const std::string& path,
                              const std::vector<EngineRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n");
  write_metadata_entry(f, !records.empty());
  for (std::size_t i = 0; i < records.size(); ++i) {
    std::fprintf(
        f, "  \"%s_p%zu\": {\"host_seconds\": %.4f, \"virtual_seconds\": %.3f}%s\n",
        records[i].algorithm.c_str(), records[i].cpus,
        records[i].host_seconds, records[i].virtual_seconds,
        i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  return true;
}

/// One cell of the fault-recovery summary: how one {algorithm, network,
/// fault scenario} run survived its injected crashes.  bench_fault_recovery
/// collects one record per cell and serializes them with write_fault_json
/// (--json <path>, conventionally BENCH_fault.json) so recovery-overhead
/// regressions are machine-checkable.
struct FaultRecord {
  std::string algorithm;
  std::string network;
  std::string scenario;
  double virtual_seconds = 0.0;
  vmpi::RecoveryStats recovery;
  /// Whether the run's outputs (targets/labels) matched the fault-free
  /// reference bit for bit -- the fault-tolerance contract.
  bool outputs_match = false;
};

/// Writes the records as a flat JSON object keyed
/// "<ALG>_<network>_<scenario>".  Same no-dependency format rationale as
/// write_kernel_json.
inline bool write_fault_json(const std::string& path,
                             const std::vector<FaultRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n");
  write_metadata_entry(f, !records.empty());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    std::fprintf(
        f,
        "  \"%s_%s_%s\": {\"virtual_seconds\": %.3f, \"detection_s\": %.3f, "
        "\"redistribution_s\": %.3f, \"recomputed_s\": %.3f, "
        "\"recomputed_mflops\": %.3f, \"crashes\": %d, \"detections\": %d, "
        "\"outputs_match\": %s}%s\n",
        r.algorithm.c_str(), r.network.c_str(), r.scenario.c_str(),
        r.virtual_seconds, r.recovery.detection_s, r.recovery.redistribution_s,
        r.recovery.recomputed_s, r.recovery.recomputed_megaflops(),
        r.recovery.crashes, r.recovery.detections,
        r.outputs_match ? "true" : "false",
        i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  return true;
}

/// One cell of the scheduler-throughput summary: one {network, policy}
/// run of a fixed job stream through sched::run_schedule.
/// bench_sched_throughput collects one record per cell and serializes them
/// with write_sched_json (--json <path>, conventionally BENCH_sched.json)
/// so placement-quality regressions are machine-checkable.
struct SchedRecord {
  std::string network;
  std::string policy;
  double makespan_s = 0.0;
  double utilization = 0.0;
  double wait_p50_s = 0.0;
  double wait_p90_s = 0.0;
  double wait_max_s = 0.0;
  std::size_t completed = 0;
  std::size_t rejected = 0;
};

/// Writes the records as a flat JSON object keyed "<network>_<policy>".
/// Same no-dependency format rationale as write_kernel_json.
inline bool write_sched_json(const std::string& path,
                             const std::vector<SchedRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n");
  write_metadata_entry(f, !records.empty());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    std::fprintf(
        f,
        "  \"%s_%s\": {\"makespan_s\": %.6f, \"utilization\": %.6f, "
        "\"wait_p50_s\": %.6f, \"wait_p90_s\": %.6f, \"wait_max_s\": %.6f, "
        "\"completed\": %zu, \"rejected\": %zu}%s\n",
        r.network.c_str(), r.policy.c_str(), r.makespan_s, r.utilization,
        r.wait_p50_s, r.wait_p90_s, r.wait_max_s, r.completed, r.rejected,
        i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  return true;
}

/// One cell of the serving bench: one {scenario, executor-mode} run of a
/// generated traffic trace through serve::run_service.
/// bench_serve_traffic collects one record per cell and serializes them
/// with write_serve_json (--json <path>, conventionally BENCH_serve.json)
/// so serving-quality regressions (SLA drift across executor modes,
/// batching losing its win) are machine-checkable.
struct ServeRecord {
  std::string scenario;
  std::string mode;
  double makespan_s = 0.0;
  double utilization = 0.0;
  double wait_p50_s = 0.0;
  double wait_p95_s = 0.0;
  double slowdown_p95 = 0.0;
  std::size_t completed = 0;
  std::size_t rejected = 0;
  std::size_t riders = 0;
};

/// Writes the records as a flat JSON object keyed "<scenario>_<mode>".
/// Same no-dependency format rationale as write_kernel_json.
inline bool write_serve_json(const std::string& path,
                             const std::vector<ServeRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n");
  write_metadata_entry(f, !records.empty());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    std::fprintf(
        f,
        "  \"%s_%s\": {\"makespan_s\": %.6f, \"utilization\": %.6f, "
        "\"wait_p50_s\": %.6f, \"wait_p95_s\": %.6f, \"slowdown_p95\": "
        "%.6f, \"completed\": %zu, \"rejected\": %zu, \"riders\": %zu}%s\n",
        r.scenario.c_str(), r.mode.c_str(), r.makespan_s, r.utilization,
        r.wait_p50_s, r.wait_p95_s, r.slowdown_p95, r.completed, r.rejected,
        r.riders, i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  return true;
}

/// One scenario of the resilience bench: a fixed single-job stream run
/// through the resilient scheduler either fault-free or under a leader
/// crash, with checkpoint resume on or off.  bench_sched_resilience
/// serializes one record per scenario with write_resilience_json
/// (--json <path>, conventionally BENCH_resilience.json) so the
/// recovery-cost contract (checkpoint resume beats cold restart, outputs
/// bit-identical) is machine-checkable.
struct ResilienceRecord {
  std::string scenario;
  double makespan_s = 0.0;
  double recovery_overhead_s = 0.0;
  std::size_t attempts = 0;
  int checkpoints = 0;
  int resumed_seq = 0;
  bool outputs_match = false;
};

/// Writes the records as a flat JSON object keyed by scenario name.
/// Same no-dependency format rationale as write_kernel_json.
inline bool write_resilience_json(const std::string& path,
                                  const std::vector<ResilienceRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n");
  write_metadata_entry(f, !records.empty());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    std::fprintf(
        f,
        "  \"%s\": {\"makespan_s\": %.6f, \"recovery_overhead_s\": %.6f, "
        "\"attempts\": %zu, \"checkpoints\": %d, \"resumed_seq\": %d, "
        "\"outputs_match\": %s}%s\n",
        r.scenario.c_str(), r.makespan_s, r.recovery_overhead_s, r.attempts,
        r.checkpoints, r.resumed_seq, r.outputs_match ? "true" : "false",
        i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  return true;
}

/// Peels "--<name> <value>" out of argv before the setup parser (or
/// benchmark::Initialize, which aborts on unrecognized flags) sees it.
/// Returns the value, or an empty string when the flag is absent.
inline std::string take_string_flag(int& argc, char** argv,
                                    const std::string& name) {
  std::string value;
  int out = 0;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--" + name && i + 1 < argc) {
      value = argv[++i];
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  return value;
}

/// Peels a bare "--<name>" switch out of argv; true when it was present.
inline bool take_bool_flag(int& argc, char** argv, const std::string& name) {
  bool value = false;
  int out = 0;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--" + name) {
      value = true;
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  return value;
}

/// Peels "--json <path>" (the machine-readable artifact twin).
inline std::string take_json_flag(int& argc, char** argv) {
  return take_string_flag(argc, argv, "json");
}

inline void emit(const TextTable& table, bool csv, const char* title) {
  std::printf("%s\n", title);
  if (csv) {
    std::printf("%s", table.to_csv().c_str());
  } else {
    std::printf("%s", table.to_string().c_str());
  }
  std::fflush(stdout);
}

}  // namespace hprs::bench
