// Ablation: how much does heterogeneity-aware partitioning (the WEA) buy as
// processor heterogeneity grows?  Sweeps synthetic 16-node platforms whose
// fastest/slowest speed ratio ranges from 1x to 32x and compares the
// heterogeneous and homogeneous versions of ATDCA.
//
// Expected shape: at spread 1 the two coincide; the homogeneous version's
// time grows with the spread (the slowest node gates it) while the
// WEA-balanced version stays near the aggregate-speed optimum.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hprs;
  const auto setup = bench::make_setup(argc, argv);

  TextTable table({"Speed spread", "Hetero time (s)", "Homo time (s)",
                   "Homo/Hetero", "Hetero D_all", "Homo D_all"});
  for (const double spread : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    const auto platform =
        simnet::synthetic_heterogeneous(16, spread, 0.0131, 26.64);
    auto cfg = setup.config;
    cfg.algorithm = core::Algorithm::kAtdca;
    cfg.policy = core::PartitionPolicy::kHeterogeneous;
    const auto het = core::run_algorithm(platform, setup.scene.cube, cfg);
    cfg.policy = core::PartitionPolicy::kHomogeneous;
    const auto homo = core::run_algorithm(platform, setup.scene.cube, cfg);
    table.add_row({TextTable::num(spread, 0),
                   TextTable::num(het.report.total_time, 1),
                   TextTable::num(homo.report.total_time, 1),
                   TextTable::num(homo.report.total_time /
                                      het.report.total_time,
                                  2),
                   TextTable::num(het.report.imbalance_all(), 2),
                   TextTable::num(homo.report.imbalance_all(), 2)});
  }
  bench::emit(table, setup.csv,
              "Ablation: WEA partitioning vs equal partitioning under "
              "growing processor heterogeneity (ATDCA, 16 nodes).");
  return 0;
}
