// Table 8: execution times of the heterogeneous algorithms on the
// Thunderhead Beowulf surrogate for 1..256 processors.
//
// Paper shapes to hold: times fall monotonically with processor count for
// every algorithm; MORPH and ATDCA keep scaling to 256 nodes while PCT
// saturates earliest (its sequential eigendecomposition).
//
// The default scene is taller than the other benches' (the 256-way
// partition needs at least 256 image rows).
//
// With --json <path>, also records the *host* wall time of each
// (algorithm, CPUs) cell -- the cost of simulating the run, as opposed to
// the virtual time the run reports -- which is how engine-scaling changes
// are tracked (large p exercises the engine's scheduling/wakeup paths far
// more than its numerics).
#include <chrono>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hprs;
  const std::string json_path = bench::take_json_flag(argc, argv);
  const auto setup = bench::make_setup(argc, argv, /*default_rows=*/1067,
                                       /*default_cols=*/32,
                                       /*default_replication=*/32);

  std::vector<std::string> header = {"CPUs"};
  for (const auto alg : bench::all_algorithms()) {
    header.push_back(core::to_string(alg));
  }
  TextTable table(std::move(header));

  std::vector<bench::EngineRecord> records;
  for (const std::size_t cpus : bench::thunderhead_cpus()) {
    std::vector<std::string> row = {
        TextTable::num(static_cast<long long>(cpus))};
    for (const auto alg : bench::all_algorithms()) {
      auto cfg = setup.config;
      cfg.algorithm = alg;
      const auto host_start = std::chrono::steady_clock::now();
      const auto out = core::run_algorithm(simnet::thunderhead(cpus),
                                           setup.scene.cube, cfg);
      const std::chrono::duration<double> host_elapsed =
          std::chrono::steady_clock::now() - host_start;
      row.push_back(TextTable::num(out.report.total_time, 0));
      records.push_back(bench::EngineRecord{core::to_string(alg), cpus,
                                            host_elapsed.count(),
                                            out.report.total_time});
    }
    table.add_row(std::move(row));
  }
  bench::emit(table, setup.csv,
              "Table 8. Execution times (seconds) of the heterogeneous "
              "algorithms on Thunderhead.");
  if (!json_path.empty() && !bench::write_engine_json(json_path, records)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }

  obs::RunSummary summary;
  for (const auto& rec : records) {
    const std::string prefix =
        "table8." + rec.algorithm + ".p" + std::to_string(rec.cpus);
    summary.set_number(prefix + ".virtual_s", rec.virtual_seconds);
    // "host" in the key routes it to report_diff's threshold comparison.
    summary.set_number(prefix + ".host_s", rec.host_seconds);
  }
  return bench::write_summary(setup, summary) ? 0 : 1;
}
