// Fault-tolerant recovery overhead (paper Sect. 6 outlook: fault tolerance
// on networks of workstations).
//
// For every algorithm on the fully heterogeneous and fully homogeneous
// 16-node networks, runs the fault-tolerant master/worker schedule
// (core/ft.hpp) under escalating deterministic fault plans and reports the
// recovery-overhead decomposition next to the fault-free run time:
//
//   none      -- empty fault plan (the protocol's baseline cost)
//   crash1    -- rank 5 fail-stops a quarter into the fault-free run
//   crash2    -- ranks 5 and 11 fail-stop at 25% / 50% of the run
//   crash+net -- crash1 plus every inter-segment link at 4x capacity
//                (ms per megabit) for the middle half of the run
//
// Every scenario's outputs are compared bit for bit against the fault-free
// collective outputs; `match` must read "yes" everywhere -- recovery must
// never change the science.  The JSON twin (--json BENCH_fault.json) makes
// the overheads machine-checkable.
#include "bench_common.hpp"

namespace {

using hprs::vmpi::FaultPlan;

struct Scenario {
  std::string name;
  /// Builds the plan from the fault-free virtual run time and the
  /// platform's segment count.
  FaultPlan (*plan)(double fault_free_s, std::size_t segments);
};

FaultPlan plan_none(double, std::size_t) { return {}; }

FaultPlan plan_crash1(double t, std::size_t) {
  FaultPlan plan;
  plan.crashes.push_back({5, 0.25 * t});
  return plan;
}

FaultPlan plan_crash2(double t, std::size_t) {
  FaultPlan plan;
  plan.crashes.push_back({5, 0.25 * t});
  plan.crashes.push_back({11, 0.50 * t});
  return plan;
}

FaultPlan plan_crash_net(double t, std::size_t segments) {
  FaultPlan plan = plan_crash1(t, segments);
  // Saturate every segment pair for the middle half of the run.
  for (std::size_t a = 0; a < segments; ++a) {
    for (std::size_t b = a; b < segments; ++b) {
      plan.degradations.push_back({a, b, 4.0, 0.25 * t, 0.75 * t});
    }
  }
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hprs;
  const std::string json_path = bench::take_json_flag(argc, argv);
  const auto setup = bench::make_setup(argc, argv);

  const std::vector<Scenario> scenarios = {
      {"none", plan_none},
      {"crash1", plan_crash1},
      {"crash2", plan_crash2},
      {"crash+net", plan_crash_net},
  };
  const std::vector<simnet::Platform> networks = {
      simnet::fully_heterogeneous(), simnet::fully_homogeneous()};

  std::vector<bench::FaultRecord> records;
  TextTable table({"Algorithm", "Network", "Scenario", "Time (s)",
                   "Detect (s)", "Redist (s)", "Recompute (s)", "Match"});
  for (const auto alg : bench::all_algorithms()) {
    for (const auto& net : networks) {
      auto cfg = setup.config;
      cfg.algorithm = alg;
      cfg.policy = core::PartitionPolicy::kHeterogeneous;

      // Fault-free collective reference: the outputs every fault-tolerant
      // run must reproduce, and the run time the fault plans key off.
      const auto reference = core::run_algorithm(net, setup.scene.cube, cfg);
      const double fault_free_s = reference.report.total_time;

      cfg.fault_tolerant = true;
      for (const auto& scenario : scenarios) {
        vmpi::Options options;
        options.fault_plan =
            scenario.plan(fault_free_s, net.segment_count());
        const auto run =
            core::run_algorithm(net, setup.scene.cube, cfg, options);
        const bool match = run.targets == reference.targets &&
                           run.labels == reference.labels;

        bench::FaultRecord rec;
        rec.algorithm = core::to_string(alg);
        rec.network = net.name();
        rec.scenario = scenario.name;
        rec.virtual_seconds = run.report.total_time;
        rec.recovery = run.report.recovery;
        rec.outputs_match = match;
        records.push_back(rec);

        table.add_row({core::to_string(alg), net.name(), scenario.name,
                       TextTable::num(rec.virtual_seconds, 3),
                       TextTable::num(rec.recovery.detection_s, 3),
                       TextTable::num(rec.recovery.redistribution_s, 3),
                       TextTable::num(rec.recovery.recomputed_s, 3),
                       match ? "yes" : "NO"});
      }
    }
  }

  bench::emit(table, setup.csv,
              "Fault recovery. Overhead decomposition of the fault-tolerant "
              "schedule under deterministic fault plans.");
  if (!json_path.empty() && !bench::write_fault_json(json_path, records)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }

  obs::RunSummary summary;
  for (const auto& rec : records) {
    const std::string prefix =
        "fault." + rec.algorithm + "." + rec.network + "." + rec.scenario;
    summary.set_number(prefix + ".virtual_s", rec.virtual_seconds);
    summary.set_number(prefix + ".detection_s", rec.recovery.detection_s);
    summary.set_number(prefix + ".redistribution_s",
                       rec.recovery.redistribution_s);
    summary.set_number(prefix + ".recomputed_s", rec.recovery.recomputed_s);
    summary.set_count(prefix + ".recomputed_flops",
                      rec.recovery.recomputed_flops);
    summary.set_count(prefix + ".crashes",
                      static_cast<std::uint64_t>(rec.recovery.crashes));
    summary.set_count(prefix + ".detections",
                      static_cast<std::uint64_t>(rec.recovery.detections));
    summary.set_bool(prefix + ".outputs_match", rec.outputs_match);
  }
  return bench::write_summary(setup, summary) ? 0 : 1;
}
