// Ablation: MORPH's overlap borders (redundant computation) versus
// per-iteration halo exchange (extra communication) -- the design choice
// Section 2.3 of the paper motivates.
//
// Expected shape: overlap borders win on time on every network (the paper's
// rationale), most clearly where links are slow; the label images of the
// two modes agree almost everywhere.
#include <algorithm>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace hprs;
  const auto setup = bench::make_setup(argc, argv);

  TextTable table({"Network", "Overlap time (s)", "Exchange time (s)",
                   "Overlap bytes", "Exchange bytes", "Label agreement %"});
  for (const auto& net : bench::paper_networks()) {
    auto cfg = setup.config;
    cfg.algorithm = core::Algorithm::kMorph;
    cfg.morph_overlap_borders = true;
    const auto overlap = core::run_algorithm(net, setup.scene.cube, cfg);
    cfg.morph_overlap_borders = false;
    const auto exchange = core::run_algorithm(net, setup.scene.cube, cfg);

    // Label ids are arbitrary cluster indices; match each overlap-mode
    // label to the exchange-mode label it most co-occurs with before
    // measuring agreement.
    std::vector<std::vector<std::size_t>> cooc(
        overlap.label_count, std::vector<std::size_t>(exchange.label_count));
    for (std::size_t i = 0; i < overlap.labels.size(); ++i) {
      ++cooc[overlap.labels[i]][exchange.labels[i]];
    }
    std::vector<std::size_t> mapped(overlap.label_count, 0);
    for (std::size_t l = 0; l < overlap.label_count; ++l) {
      mapped[l] = static_cast<std::size_t>(
          std::max_element(cooc[l].begin(), cooc[l].end()) - cooc[l].begin());
    }
    std::size_t agree = 0;
    for (std::size_t i = 0; i < overlap.labels.size(); ++i) {
      if (mapped[overlap.labels[i]] == exchange.labels[i]) ++agree;
    }
    table.add_row(
        {net.name(), TextTable::num(overlap.report.total_time, 1),
         TextTable::num(exchange.report.total_time, 1),
         TextTable::num(
             static_cast<long long>(overlap.report.total_bytes_moved())),
         TextTable::num(
             static_cast<long long>(exchange.report.total_bytes_moved())),
         TextTable::num(100.0 * static_cast<double>(agree) /
                            static_cast<double>(overlap.labels.size()),
                        2)});
  }
  bench::emit(table, setup.csv,
              "Ablation: MORPH overlap borders (redundant compute) vs halo "
              "exchange (extra communication).");
  return 0;
}
