// Table 3: spectral similarity (SAD) between the target pixels detected by
// Hetero-ATDCA / Hetero-UFCLS and the known thermal hot spots, with the
// single-processor execution times in parentheses.
//
// Paper shapes to hold: ATDCA matches every hot spot near-exactly; UFCLS
// misses the weak ones -- most notably 'F', the 700 F spot the paper calls
// out.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "hsi/metrics.hpp"

int main(int argc, char** argv) {
  using namespace hprs;
  auto setup = bench::make_setup(argc, argv);
  const auto& scene = setup.scene;

  struct Column {
    core::Algorithm algorithm;
    core::RunnerOutput detection;   // on the fully heterogeneous network
    double sequential_seconds = 0;  // single Thunderhead processor
  };
  std::vector<Column> columns;
  for (const auto alg : {core::Algorithm::kAtdca, core::Algorithm::kUfcls}) {
    Column col;
    col.algorithm = alg;
    auto cfg = setup.config;
    cfg.algorithm = alg;
    col.detection =
        core::run_algorithm(simnet::fully_heterogeneous(), scene.cube, cfg);
    col.sequential_seconds =
        core::run_algorithm(simnet::thunderhead(1), scene.cube, cfg)
            .report.total_time;
    columns.push_back(std::move(col));
  }

  TextTable table({"Hot spot",
                   "Hetero-ATDCA (" +
                       TextTable::num(columns[0].sequential_seconds, 0) + ")",
                   "Hetero-UFCLS (" +
                       TextTable::num(columns[1].sequential_seconds, 0) + ")"});
  for (const auto& hs : scene.truth.hot_spots) {
    const auto truth_px = scene.cube.pixel(hs.row, hs.col);
    std::vector<std::string> row = {std::string("'") + hs.label + "'"};
    for (const auto& col : columns) {
      double best = 10.0;
      for (const auto& t : col.detection.targets) {
        best = std::min(best, hsi::sad<float, float>(
                                  truth_px, scene.cube.pixel(t.row, t.col)));
      }
      row.push_back(TextTable::num(best, 3));
    }
    table.add_row(row);
  }
  bench::emit(table, setup.csv,
              "Table 3. SAD between detected targets and known ground "
              "targets (single-processor seconds in parentheses).");
  return 0;
}
