# Empty compiler generated dependencies file for target_detection_wtc.
# This may be replaced when dependencies are built.
