
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/target_detection_wtc.cpp" "examples/CMakeFiles/target_detection_wtc.dir/target_detection_wtc.cpp.o" "gcc" "examples/CMakeFiles/target_detection_wtc.dir/target_detection_wtc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hprs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hsi/CMakeFiles/hprs_hsi.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/hprs_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/vmpi/CMakeFiles/hprs_vmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hprs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/hprs_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
