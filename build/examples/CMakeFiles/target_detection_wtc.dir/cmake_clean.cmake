file(REMOVE_RECURSE
  "CMakeFiles/target_detection_wtc.dir/target_detection_wtc.cpp.o"
  "CMakeFiles/target_detection_wtc.dir/target_detection_wtc.cpp.o.d"
  "target_detection_wtc"
  "target_detection_wtc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/target_detection_wtc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
