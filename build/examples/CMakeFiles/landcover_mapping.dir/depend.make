# Empty dependencies file for landcover_mapping.
# This may be replaced when dependencies are built.
