file(REMOVE_RECURSE
  "CMakeFiles/landcover_mapping.dir/landcover_mapping.cpp.o"
  "CMakeFiles/landcover_mapping.dir/landcover_mapping.cpp.o.d"
  "landcover_mapping"
  "landcover_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/landcover_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
