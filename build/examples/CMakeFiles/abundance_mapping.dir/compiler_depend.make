# Empty compiler generated dependencies file for abundance_mapping.
# This may be replaced when dependencies are built.
