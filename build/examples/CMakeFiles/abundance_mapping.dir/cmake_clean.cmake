file(REMOVE_RECURSE
  "CMakeFiles/abundance_mapping.dir/abundance_mapping.cpp.o"
  "CMakeFiles/abundance_mapping.dir/abundance_mapping.cpp.o.d"
  "abundance_mapping"
  "abundance_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abundance_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
