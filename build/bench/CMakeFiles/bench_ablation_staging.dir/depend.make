# Empty dependencies file for bench_ablation_staging.
# This may be replaced when dependencies are built.
