# Empty dependencies file for bench_ablation_partition_strategy.
# This may be replaced when dependencies are built.
