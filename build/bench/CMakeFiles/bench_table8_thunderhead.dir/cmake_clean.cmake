file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_thunderhead.dir/bench_table8_thunderhead.cpp.o"
  "CMakeFiles/bench_table8_thunderhead.dir/bench_table8_thunderhead.cpp.o.d"
  "bench_table8_thunderhead"
  "bench_table8_thunderhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_thunderhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
