# Empty dependencies file for bench_table8_thunderhead.
# This may be replaced when dependencies are built.
