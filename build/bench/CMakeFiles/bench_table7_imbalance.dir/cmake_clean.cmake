file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_imbalance.dir/bench_table7_imbalance.cpp.o"
  "CMakeFiles/bench_table7_imbalance.dir/bench_table7_imbalance.cpp.o.d"
  "bench_table7_imbalance"
  "bench_table7_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
