file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_classification.dir/bench_table4_classification.cpp.o"
  "CMakeFiles/bench_table4_classification.dir/bench_table4_classification.cpp.o.d"
  "bench_table4_classification"
  "bench_table4_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
