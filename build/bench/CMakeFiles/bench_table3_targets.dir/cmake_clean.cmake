file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_targets.dir/bench_table3_targets.cpp.o"
  "CMakeFiles/bench_table3_targets.dir/bench_table3_targets.cpp.o.d"
  "bench_table3_targets"
  "bench_table3_targets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_targets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
