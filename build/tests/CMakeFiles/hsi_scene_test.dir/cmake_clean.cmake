file(REMOVE_RECURSE
  "CMakeFiles/hsi_scene_test.dir/hsi_scene_test.cpp.o"
  "CMakeFiles/hsi_scene_test.dir/hsi_scene_test.cpp.o.d"
  "hsi_scene_test"
  "hsi_scene_test.pdb"
  "hsi_scene_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsi_scene_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
