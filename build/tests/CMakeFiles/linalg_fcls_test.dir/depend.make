# Empty dependencies file for linalg_fcls_test.
# This may be replaced when dependencies are built.
