file(REMOVE_RECURSE
  "CMakeFiles/linalg_fcls_test.dir/linalg_fcls_test.cpp.o"
  "CMakeFiles/linalg_fcls_test.dir/linalg_fcls_test.cpp.o.d"
  "linalg_fcls_test"
  "linalg_fcls_test.pdb"
  "linalg_fcls_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_fcls_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
