# Empty dependencies file for core_unmix_map_test.
# This may be replaced when dependencies are built.
