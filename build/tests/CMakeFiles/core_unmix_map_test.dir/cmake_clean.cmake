file(REMOVE_RECURSE
  "CMakeFiles/core_unmix_map_test.dir/core_unmix_map_test.cpp.o"
  "CMakeFiles/core_unmix_map_test.dir/core_unmix_map_test.cpp.o.d"
  "core_unmix_map_test"
  "core_unmix_map_test.pdb"
  "core_unmix_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_unmix_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
