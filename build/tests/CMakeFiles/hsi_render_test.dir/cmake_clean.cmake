file(REMOVE_RECURSE
  "CMakeFiles/hsi_render_test.dir/hsi_render_test.cpp.o"
  "CMakeFiles/hsi_render_test.dir/hsi_render_test.cpp.o.d"
  "hsi_render_test"
  "hsi_render_test.pdb"
  "hsi_render_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsi_render_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
