# Empty compiler generated dependencies file for hsi_render_test.
# This may be replaced when dependencies are built.
