# Empty compiler generated dependencies file for simnet_equivalence_test.
# This may be replaced when dependencies are built.
