file(REMOVE_RECURSE
  "CMakeFiles/simnet_equivalence_test.dir/simnet_equivalence_test.cpp.o"
  "CMakeFiles/simnet_equivalence_test.dir/simnet_equivalence_test.cpp.o.d"
  "simnet_equivalence_test"
  "simnet_equivalence_test.pdb"
  "simnet_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simnet_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
