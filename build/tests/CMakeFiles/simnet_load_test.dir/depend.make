# Empty dependencies file for simnet_load_test.
# This may be replaced when dependencies are built.
