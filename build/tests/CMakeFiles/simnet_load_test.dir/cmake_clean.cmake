file(REMOVE_RECURSE
  "CMakeFiles/simnet_load_test.dir/simnet_load_test.cpp.o"
  "CMakeFiles/simnet_load_test.dir/simnet_load_test.cpp.o.d"
  "simnet_load_test"
  "simnet_load_test.pdb"
  "simnet_load_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simnet_load_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
