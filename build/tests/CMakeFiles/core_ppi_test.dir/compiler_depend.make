# Empty compiler generated dependencies file for core_ppi_test.
# This may be replaced when dependencies are built.
