file(REMOVE_RECURSE
  "CMakeFiles/core_ppi_test.dir/core_ppi_test.cpp.o"
  "CMakeFiles/core_ppi_test.dir/core_ppi_test.cpp.o.d"
  "core_ppi_test"
  "core_ppi_test.pdb"
  "core_ppi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_ppi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
