file(REMOVE_RECURSE
  "CMakeFiles/simnet_platform_test.dir/simnet_platform_test.cpp.o"
  "CMakeFiles/simnet_platform_test.dir/simnet_platform_test.cpp.o.d"
  "simnet_platform_test"
  "simnet_platform_test.pdb"
  "simnet_platform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simnet_platform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
