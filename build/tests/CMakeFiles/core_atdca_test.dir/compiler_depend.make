# Empty compiler generated dependencies file for core_atdca_test.
# This may be replaced when dependencies are built.
