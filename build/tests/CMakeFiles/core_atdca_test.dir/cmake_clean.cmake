file(REMOVE_RECURSE
  "CMakeFiles/core_atdca_test.dir/core_atdca_test.cpp.o"
  "CMakeFiles/core_atdca_test.dir/core_atdca_test.cpp.o.d"
  "core_atdca_test"
  "core_atdca_test.pdb"
  "core_atdca_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_atdca_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
