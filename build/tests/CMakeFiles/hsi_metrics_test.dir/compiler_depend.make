# Empty compiler generated dependencies file for hsi_metrics_test.
# This may be replaced when dependencies are built.
