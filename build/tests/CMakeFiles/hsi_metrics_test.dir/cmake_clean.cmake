file(REMOVE_RECURSE
  "CMakeFiles/hsi_metrics_test.dir/hsi_metrics_test.cpp.o"
  "CMakeFiles/hsi_metrics_test.dir/hsi_metrics_test.cpp.o.d"
  "hsi_metrics_test"
  "hsi_metrics_test.pdb"
  "hsi_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsi_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
