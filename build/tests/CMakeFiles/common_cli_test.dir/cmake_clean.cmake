file(REMOVE_RECURSE
  "CMakeFiles/common_cli_test.dir/common_cli_test.cpp.o"
  "CMakeFiles/common_cli_test.dir/common_cli_test.cpp.o.d"
  "common_cli_test"
  "common_cli_test.pdb"
  "common_cli_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_cli_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
