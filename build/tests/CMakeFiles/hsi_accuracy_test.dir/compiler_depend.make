# Empty compiler generated dependencies file for hsi_accuracy_test.
# This may be replaced when dependencies are built.
