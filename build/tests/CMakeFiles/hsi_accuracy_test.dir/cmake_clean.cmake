file(REMOVE_RECURSE
  "CMakeFiles/hsi_accuracy_test.dir/hsi_accuracy_test.cpp.o"
  "CMakeFiles/hsi_accuracy_test.dir/hsi_accuracy_test.cpp.o.d"
  "hsi_accuracy_test"
  "hsi_accuracy_test.pdb"
  "hsi_accuracy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsi_accuracy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
