# Empty dependencies file for vmpi_engine_test.
# This may be replaced when dependencies are built.
