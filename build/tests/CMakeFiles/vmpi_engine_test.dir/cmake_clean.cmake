file(REMOVE_RECURSE
  "CMakeFiles/vmpi_engine_test.dir/vmpi_engine_test.cpp.o"
  "CMakeFiles/vmpi_engine_test.dir/vmpi_engine_test.cpp.o.d"
  "vmpi_engine_test"
  "vmpi_engine_test.pdb"
  "vmpi_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmpi_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
