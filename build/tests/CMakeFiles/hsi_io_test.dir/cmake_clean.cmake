file(REMOVE_RECURSE
  "CMakeFiles/hsi_io_test.dir/hsi_io_test.cpp.o"
  "CMakeFiles/hsi_io_test.dir/hsi_io_test.cpp.o.d"
  "hsi_io_test"
  "hsi_io_test.pdb"
  "hsi_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsi_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
