file(REMOVE_RECURSE
  "CMakeFiles/linalg_flops_test.dir/linalg_flops_test.cpp.o"
  "CMakeFiles/linalg_flops_test.dir/linalg_flops_test.cpp.o.d"
  "linalg_flops_test"
  "linalg_flops_test.pdb"
  "linalg_flops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_flops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
