# Empty dependencies file for linalg_flops_test.
# This may be replaced when dependencies are built.
