file(REMOVE_RECURSE
  "CMakeFiles/hsi_vd_test.dir/hsi_vd_test.cpp.o"
  "CMakeFiles/hsi_vd_test.dir/hsi_vd_test.cpp.o.d"
  "hsi_vd_test"
  "hsi_vd_test.pdb"
  "hsi_vd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsi_vd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
