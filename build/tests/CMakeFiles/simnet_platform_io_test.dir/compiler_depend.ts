# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for simnet_platform_io_test.
