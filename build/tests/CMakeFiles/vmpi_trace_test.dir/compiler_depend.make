# Empty compiler generated dependencies file for vmpi_trace_test.
# This may be replaced when dependencies are built.
