file(REMOVE_RECURSE
  "CMakeFiles/vmpi_trace_test.dir/vmpi_trace_test.cpp.o"
  "CMakeFiles/vmpi_trace_test.dir/vmpi_trace_test.cpp.o.d"
  "vmpi_trace_test"
  "vmpi_trace_test.pdb"
  "vmpi_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmpi_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
