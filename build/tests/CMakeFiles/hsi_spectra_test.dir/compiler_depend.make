# Empty compiler generated dependencies file for hsi_spectra_test.
# This may be replaced when dependencies are built.
