file(REMOVE_RECURSE
  "CMakeFiles/hsi_spectra_test.dir/hsi_spectra_test.cpp.o"
  "CMakeFiles/hsi_spectra_test.dir/hsi_spectra_test.cpp.o.d"
  "hsi_spectra_test"
  "hsi_spectra_test.pdb"
  "hsi_spectra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsi_spectra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
