file(REMOVE_RECURSE
  "CMakeFiles/vmpi_collectives_test.dir/vmpi_collectives_test.cpp.o"
  "CMakeFiles/vmpi_collectives_test.dir/vmpi_collectives_test.cpp.o.d"
  "vmpi_collectives_test"
  "vmpi_collectives_test.pdb"
  "vmpi_collectives_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmpi_collectives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
