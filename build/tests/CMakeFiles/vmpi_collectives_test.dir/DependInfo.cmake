
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/vmpi_collectives_test.cpp" "tests/CMakeFiles/vmpi_collectives_test.dir/vmpi_collectives_test.cpp.o" "gcc" "tests/CMakeFiles/vmpi_collectives_test.dir/vmpi_collectives_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hprs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hsi/CMakeFiles/hprs_hsi.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/hprs_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/vmpi/CMakeFiles/hprs_vmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/hprs_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hprs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
