# Empty dependencies file for vmpi_collectives_test.
# This may be replaced when dependencies are built.
