# Empty dependencies file for core_pct_test.
# This may be replaced when dependencies are built.
