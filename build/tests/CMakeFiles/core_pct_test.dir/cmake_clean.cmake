file(REMOVE_RECURSE
  "CMakeFiles/core_pct_test.dir/core_pct_test.cpp.o"
  "CMakeFiles/core_pct_test.dir/core_pct_test.cpp.o.d"
  "core_pct_test"
  "core_pct_test.pdb"
  "core_pct_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_pct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
