file(REMOVE_RECURSE
  "CMakeFiles/core_ufcls_test.dir/core_ufcls_test.cpp.o"
  "CMakeFiles/core_ufcls_test.dir/core_ufcls_test.cpp.o.d"
  "core_ufcls_test"
  "core_ufcls_test.pdb"
  "core_ufcls_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_ufcls_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
