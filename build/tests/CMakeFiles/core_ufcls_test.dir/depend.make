# Empty dependencies file for core_ufcls_test.
# This may be replaced when dependencies are built.
