file(REMOVE_RECURSE
  "CMakeFiles/core_morph_test.dir/core_morph_test.cpp.o"
  "CMakeFiles/core_morph_test.dir/core_morph_test.cpp.o.d"
  "core_morph_test"
  "core_morph_test.pdb"
  "core_morph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_morph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
