# Empty dependencies file for core_morph_test.
# This may be replaced when dependencies are built.
