# Empty dependencies file for hsi_cube_test.
# This may be replaced when dependencies are built.
