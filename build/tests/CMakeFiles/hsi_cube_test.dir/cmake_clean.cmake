file(REMOVE_RECURSE
  "CMakeFiles/hsi_cube_test.dir/hsi_cube_test.cpp.o"
  "CMakeFiles/hsi_cube_test.dir/hsi_cube_test.cpp.o.d"
  "hsi_cube_test"
  "hsi_cube_test.pdb"
  "hsi_cube_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsi_cube_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
