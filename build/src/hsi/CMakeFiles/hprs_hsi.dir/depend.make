# Empty dependencies file for hprs_hsi.
# This may be replaced when dependencies are built.
