file(REMOVE_RECURSE
  "libhprs_hsi.a"
)
