file(REMOVE_RECURSE
  "CMakeFiles/hprs_hsi.dir/accuracy.cpp.o"
  "CMakeFiles/hprs_hsi.dir/accuracy.cpp.o.d"
  "CMakeFiles/hprs_hsi.dir/cube.cpp.o"
  "CMakeFiles/hprs_hsi.dir/cube.cpp.o.d"
  "CMakeFiles/hprs_hsi.dir/io.cpp.o"
  "CMakeFiles/hprs_hsi.dir/io.cpp.o.d"
  "CMakeFiles/hprs_hsi.dir/render.cpp.o"
  "CMakeFiles/hprs_hsi.dir/render.cpp.o.d"
  "CMakeFiles/hprs_hsi.dir/scene.cpp.o"
  "CMakeFiles/hprs_hsi.dir/scene.cpp.o.d"
  "CMakeFiles/hprs_hsi.dir/spectra.cpp.o"
  "CMakeFiles/hprs_hsi.dir/spectra.cpp.o.d"
  "CMakeFiles/hprs_hsi.dir/vd.cpp.o"
  "CMakeFiles/hprs_hsi.dir/vd.cpp.o.d"
  "libhprs_hsi.a"
  "libhprs_hsi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hprs_hsi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
