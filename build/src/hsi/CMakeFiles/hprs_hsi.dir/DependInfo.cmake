
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hsi/accuracy.cpp" "src/hsi/CMakeFiles/hprs_hsi.dir/accuracy.cpp.o" "gcc" "src/hsi/CMakeFiles/hprs_hsi.dir/accuracy.cpp.o.d"
  "/root/repo/src/hsi/cube.cpp" "src/hsi/CMakeFiles/hprs_hsi.dir/cube.cpp.o" "gcc" "src/hsi/CMakeFiles/hprs_hsi.dir/cube.cpp.o.d"
  "/root/repo/src/hsi/io.cpp" "src/hsi/CMakeFiles/hprs_hsi.dir/io.cpp.o" "gcc" "src/hsi/CMakeFiles/hprs_hsi.dir/io.cpp.o.d"
  "/root/repo/src/hsi/render.cpp" "src/hsi/CMakeFiles/hprs_hsi.dir/render.cpp.o" "gcc" "src/hsi/CMakeFiles/hprs_hsi.dir/render.cpp.o.d"
  "/root/repo/src/hsi/scene.cpp" "src/hsi/CMakeFiles/hprs_hsi.dir/scene.cpp.o" "gcc" "src/hsi/CMakeFiles/hprs_hsi.dir/scene.cpp.o.d"
  "/root/repo/src/hsi/spectra.cpp" "src/hsi/CMakeFiles/hprs_hsi.dir/spectra.cpp.o" "gcc" "src/hsi/CMakeFiles/hprs_hsi.dir/spectra.cpp.o.d"
  "/root/repo/src/hsi/vd.cpp" "src/hsi/CMakeFiles/hprs_hsi.dir/vd.cpp.o" "gcc" "src/hsi/CMakeFiles/hprs_hsi.dir/vd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hprs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/hprs_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
