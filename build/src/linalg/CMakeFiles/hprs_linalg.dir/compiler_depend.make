# Empty compiler generated dependencies file for hprs_linalg.
# This may be replaced when dependencies are built.
