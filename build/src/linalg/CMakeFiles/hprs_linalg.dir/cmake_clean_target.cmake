file(REMOVE_RECURSE
  "libhprs_linalg.a"
)
