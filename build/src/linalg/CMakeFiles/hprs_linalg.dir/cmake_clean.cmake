file(REMOVE_RECURSE
  "CMakeFiles/hprs_linalg.dir/eigen.cpp.o"
  "CMakeFiles/hprs_linalg.dir/eigen.cpp.o.d"
  "CMakeFiles/hprs_linalg.dir/fcls.cpp.o"
  "CMakeFiles/hprs_linalg.dir/fcls.cpp.o.d"
  "CMakeFiles/hprs_linalg.dir/matrix.cpp.o"
  "CMakeFiles/hprs_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/hprs_linalg.dir/solve.cpp.o"
  "CMakeFiles/hprs_linalg.dir/solve.cpp.o.d"
  "libhprs_linalg.a"
  "libhprs_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hprs_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
