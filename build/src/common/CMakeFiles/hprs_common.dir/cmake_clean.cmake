file(REMOVE_RECURSE
  "CMakeFiles/hprs_common.dir/cli.cpp.o"
  "CMakeFiles/hprs_common.dir/cli.cpp.o.d"
  "CMakeFiles/hprs_common.dir/error.cpp.o"
  "CMakeFiles/hprs_common.dir/error.cpp.o.d"
  "CMakeFiles/hprs_common.dir/table.cpp.o"
  "CMakeFiles/hprs_common.dir/table.cpp.o.d"
  "libhprs_common.a"
  "libhprs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hprs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
