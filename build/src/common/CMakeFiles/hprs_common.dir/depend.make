# Empty dependencies file for hprs_common.
# This may be replaced when dependencies are built.
