file(REMOVE_RECURSE
  "libhprs_common.a"
)
