file(REMOVE_RECURSE
  "libhprs_core.a"
)
