file(REMOVE_RECURSE
  "CMakeFiles/hprs_core.dir/atdca.cpp.o"
  "CMakeFiles/hprs_core.dir/atdca.cpp.o.d"
  "CMakeFiles/hprs_core.dir/morph.cpp.o"
  "CMakeFiles/hprs_core.dir/morph.cpp.o.d"
  "CMakeFiles/hprs_core.dir/partition.cpp.o"
  "CMakeFiles/hprs_core.dir/partition.cpp.o.d"
  "CMakeFiles/hprs_core.dir/pct.cpp.o"
  "CMakeFiles/hprs_core.dir/pct.cpp.o.d"
  "CMakeFiles/hprs_core.dir/ppi.cpp.o"
  "CMakeFiles/hprs_core.dir/ppi.cpp.o.d"
  "CMakeFiles/hprs_core.dir/runner.cpp.o"
  "CMakeFiles/hprs_core.dir/runner.cpp.o.d"
  "CMakeFiles/hprs_core.dir/spmd_common.cpp.o"
  "CMakeFiles/hprs_core.dir/spmd_common.cpp.o.d"
  "CMakeFiles/hprs_core.dir/ufcls.cpp.o"
  "CMakeFiles/hprs_core.dir/ufcls.cpp.o.d"
  "CMakeFiles/hprs_core.dir/unmix_map.cpp.o"
  "CMakeFiles/hprs_core.dir/unmix_map.cpp.o.d"
  "libhprs_core.a"
  "libhprs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hprs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
