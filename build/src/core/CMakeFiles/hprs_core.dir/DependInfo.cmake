
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/atdca.cpp" "src/core/CMakeFiles/hprs_core.dir/atdca.cpp.o" "gcc" "src/core/CMakeFiles/hprs_core.dir/atdca.cpp.o.d"
  "/root/repo/src/core/morph.cpp" "src/core/CMakeFiles/hprs_core.dir/morph.cpp.o" "gcc" "src/core/CMakeFiles/hprs_core.dir/morph.cpp.o.d"
  "/root/repo/src/core/partition.cpp" "src/core/CMakeFiles/hprs_core.dir/partition.cpp.o" "gcc" "src/core/CMakeFiles/hprs_core.dir/partition.cpp.o.d"
  "/root/repo/src/core/pct.cpp" "src/core/CMakeFiles/hprs_core.dir/pct.cpp.o" "gcc" "src/core/CMakeFiles/hprs_core.dir/pct.cpp.o.d"
  "/root/repo/src/core/ppi.cpp" "src/core/CMakeFiles/hprs_core.dir/ppi.cpp.o" "gcc" "src/core/CMakeFiles/hprs_core.dir/ppi.cpp.o.d"
  "/root/repo/src/core/runner.cpp" "src/core/CMakeFiles/hprs_core.dir/runner.cpp.o" "gcc" "src/core/CMakeFiles/hprs_core.dir/runner.cpp.o.d"
  "/root/repo/src/core/spmd_common.cpp" "src/core/CMakeFiles/hprs_core.dir/spmd_common.cpp.o" "gcc" "src/core/CMakeFiles/hprs_core.dir/spmd_common.cpp.o.d"
  "/root/repo/src/core/ufcls.cpp" "src/core/CMakeFiles/hprs_core.dir/ufcls.cpp.o" "gcc" "src/core/CMakeFiles/hprs_core.dir/ufcls.cpp.o.d"
  "/root/repo/src/core/unmix_map.cpp" "src/core/CMakeFiles/hprs_core.dir/unmix_map.cpp.o" "gcc" "src/core/CMakeFiles/hprs_core.dir/unmix_map.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hprs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/hprs_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/hsi/CMakeFiles/hprs_hsi.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/hprs_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/vmpi/CMakeFiles/hprs_vmpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
