# Empty compiler generated dependencies file for hprs_core.
# This may be replaced when dependencies are built.
