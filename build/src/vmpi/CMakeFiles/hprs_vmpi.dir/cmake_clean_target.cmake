file(REMOVE_RECURSE
  "libhprs_vmpi.a"
)
