# Empty compiler generated dependencies file for hprs_vmpi.
# This may be replaced when dependencies are built.
