file(REMOVE_RECURSE
  "CMakeFiles/hprs_vmpi.dir/engine.cpp.o"
  "CMakeFiles/hprs_vmpi.dir/engine.cpp.o.d"
  "CMakeFiles/hprs_vmpi.dir/trace.cpp.o"
  "CMakeFiles/hprs_vmpi.dir/trace.cpp.o.d"
  "libhprs_vmpi.a"
  "libhprs_vmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hprs_vmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
