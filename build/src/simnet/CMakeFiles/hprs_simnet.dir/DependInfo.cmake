
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simnet/equivalence.cpp" "src/simnet/CMakeFiles/hprs_simnet.dir/equivalence.cpp.o" "gcc" "src/simnet/CMakeFiles/hprs_simnet.dir/equivalence.cpp.o.d"
  "/root/repo/src/simnet/load.cpp" "src/simnet/CMakeFiles/hprs_simnet.dir/load.cpp.o" "gcc" "src/simnet/CMakeFiles/hprs_simnet.dir/load.cpp.o.d"
  "/root/repo/src/simnet/platform.cpp" "src/simnet/CMakeFiles/hprs_simnet.dir/platform.cpp.o" "gcc" "src/simnet/CMakeFiles/hprs_simnet.dir/platform.cpp.o.d"
  "/root/repo/src/simnet/platform_io.cpp" "src/simnet/CMakeFiles/hprs_simnet.dir/platform_io.cpp.o" "gcc" "src/simnet/CMakeFiles/hprs_simnet.dir/platform_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hprs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
