# Empty compiler generated dependencies file for hprs_simnet.
# This may be replaced when dependencies are built.
