file(REMOVE_RECURSE
  "CMakeFiles/hprs_simnet.dir/equivalence.cpp.o"
  "CMakeFiles/hprs_simnet.dir/equivalence.cpp.o.d"
  "CMakeFiles/hprs_simnet.dir/load.cpp.o"
  "CMakeFiles/hprs_simnet.dir/load.cpp.o.d"
  "CMakeFiles/hprs_simnet.dir/platform.cpp.o"
  "CMakeFiles/hprs_simnet.dir/platform.cpp.o.d"
  "CMakeFiles/hprs_simnet.dir/platform_io.cpp.o"
  "CMakeFiles/hprs_simnet.dir/platform_io.cpp.o.d"
  "libhprs_simnet.a"
  "libhprs_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hprs_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
