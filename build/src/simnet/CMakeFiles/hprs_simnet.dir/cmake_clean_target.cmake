file(REMOVE_RECURSE
  "libhprs_simnet.a"
)
